"""pickle-boundary fixture: unpicklable state on a strategy."""

import threading

from repro.strategies.base import SelectionStrategy


class LeakyStrategy(SelectionStrategy):
    spec = "leaky"
    name = "Leaky"

    def __init__(self):
        # BAD: locks do not pickle across the process fit plane.
        self._lock = threading.Lock()
        # BAD: neither do lambdas.
        self._scorer = lambda model_id: 0.0
