"""lock-discipline fixture: a declared guard with an unguarded read."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded by: self._lock

    def record(self):
        with self._lock:
            self._hits += 1

    def peek(self):
        # BAD: reads self._hits without holding self._lock.
        return self._hits
