"""pickle-boundary fixture: a spawn worker fed an unpicklable task."""


def schedule(pool, zoo, target):
    def task():
        return zoo, target

    # BAD: nested functions cannot be pickled to a spawn worker.
    return pool.submit(task)
