"""async-blocking fixture: blocking primitives inline in coroutines."""

import sqlite3
import time


async def handle(request, future):
    # BAD: time.sleep stalls the loop; open blocks on file IO;
    # future.result() blocks until resolution.
    time.sleep(0.1)
    with open(request) as fh:
        payload = fh.read()
    return future.result(), payload


async def refit(strategy, zoo, target):
    # BAD: a strategy fit runs inline on the event loop.
    return strategy.fit(zoo, target)


async def lookup(index, fingerprint):
    # BAD: SQLite work is file IO (plus a database lock) on the loop.
    conn = sqlite3.connect("registry.db")
    return conn.execute("SELECT path FROM registry_index WHERE fp = ?",
                        (fingerprint,)).fetchall()
