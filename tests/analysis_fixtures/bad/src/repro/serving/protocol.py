"""wire-schema fixture: breaks the additive-only contract four ways.

Relative to the committed snapshot next door: ``RankRequest.request_id``
was removed, ``RankRequest.top_k`` was retyped, ``RankRequest.trace`` is
a new *required* field, and the ``RankResponse`` message is gone.  The
``numpy`` import additionally violates the layering rule's
protocol-is-stdlib-only edge.
"""

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

PROTOCOL_VERSION = "v1"

ZERO = float(np.float64(0.0))


@dataclass(frozen=True)
class RankRequest:
    kind: ClassVar[str] = "rank"
    target: str
    trace: str
    top_k: str = "5"
