"""``/v1/compare``: protocol, fan-out semantics, budgets, the eval engine."""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    CompareRequest,
    CompareResponse,
    ProtocolError,
    QueueFullError,
    RankRequest,
    StrategyComparison,
    UnknownNamespaceError,
    UnknownStrategyError,
    UnknownTargetError,
    build_comparisons,
    generate_workload,
    message_from_json,
    ranking_metrics,
    replay_concurrent,
    served_evaluation,
    write_report,
    WorkloadConfig,
)

from serving_stubs import STUB_SCORES, StubStrategy, stub_gateway

_name = st.text(st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=24)


def run(coro):
    return asyncio.run(coro)


def compare_gateway(**kwargs):
    """One namespace, three strategies with exactly known relationships.

    The namespace default (the stub TG config, spec ``tg:lr,n2v,all``)
    ranks m0 > m1 > m2; ``agree`` serves the identical ordering, ``flip``
    the exact reverse.
    """
    return stub_gateway(
        names=("alpha",),
        strategies=(StubStrategy("agree", STUB_SCORES["agree"],
                                 fit_weight=0.25),
                    StubStrategy("flip", STUB_SCORES["flip"],
                                 fit_weight=4.0)),
        **kwargs)


# ---------------------------------------------------------------------- #
# protocol messages
# ---------------------------------------------------------------------- #
class TestCompareProtocol:
    @settings(max_examples=50, deadline=None)
    @given(target=_name, namespace=_name,
           strategies=st.none() | st.lists(_name, min_size=1, max_size=4),
           reference=st.none() | _name,
           top_k=st.none() | st.integers(min_value=1, max_value=100))
    def test_request_round_trips(self, target, namespace, strategies,
                                 reference, top_k):
        request = CompareRequest(target=target, namespace=namespace,
                                 strategies=strategies, reference=reference,
                                 top_k=top_k)
        revived = CompareRequest.from_json(request.to_json())
        assert revived == request
        assert revived.to_json() == request.to_json()  # byte-stable
        assert message_from_json(request.to_json()) == request

    def test_minimal_request_bytes(self):
        request = CompareRequest(target="dtd")
        assert request.to_json() == ('{"kind":"compare","namespace":'
                                     '"default","target":"dtd","top_k":null}')

    def test_empty_strategies_is_a_protocol_error(self):
        """An explicitly empty fan-out set is a client bug -> typed 400."""
        with pytest.raises(ProtocolError, match="non-empty"):
            CompareRequest(target="dtd", strategies=())
        with pytest.raises(ProtocolError, match="non-empty"):
            CompareRequest.from_json(
                '{"target": "dtd", "strategies": []}')

    def test_response_round_trips_with_mixed_statuses(self):
        ok = StrategyComparison(
            status="ok", ranking=(("m0", 1.0), ("m1", 0.25)),
            pearson=0.5, spearman=1.0, top_k_overlap=0.5,
            latency={"p50_ms": 1.5, "fit_p95_ms": 80.0})
        shed = StrategyComparison(status="shed", retry_after_s=2.5,
                                  latency={"p50_ms": 2.0})
        response = CompareResponse(namespace="n", target="dtd",
                                   reference="a", top_k=2,
                                   results={"a": ok, "b": shed})
        revived = CompareResponse.from_json(response.to_json())
        assert revived == response
        assert revived.to_json() == response.to_json()
        assert message_from_json(response.to_json()) == response
        assert revived.results["b"].retry_after_s == 2.5
        assert revived.results["b"].ranking == ()

    def test_ok_requires_ranking(self):
        with pytest.raises(ProtocolError, match="ranking is required"):
            StrategyComparison(status="ok")

    def test_ok_rejects_retry_hint(self):
        with pytest.raises(ProtocolError, match="retry_after_s"):
            StrategyComparison(status="ok", ranking=(("m0", 1.0),),
                               retry_after_s=1.0)

    def test_shed_requires_retry_hint_and_no_ranking(self):
        with pytest.raises(ProtocolError, match="retry_after_s"):
            StrategyComparison(status="shed")
        with pytest.raises(ProtocolError, match="must be empty"):
            StrategyComparison(status="shed", ranking=(("m0", 1.0),),
                               retry_after_s=1.0)
        with pytest.raises(ProtocolError, match="correlations"):
            StrategyComparison(status="shed", retry_after_s=1.0,
                               pearson=0.5)

    def test_overlap_bounds(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(ProtocolError, match="top_k_overlap"):
                StrategyComparison(status="ok", ranking=(("m0", 1.0),),
                                   top_k_overlap=bad)

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            StrategyComparison(status="maybe")

    def test_response_reference_must_be_compared(self):
        ok = StrategyComparison(status="ok", ranking=(("m0", 1.0),))
        with pytest.raises(ProtocolError, match="reference"):
            CompareResponse(namespace="n", target="t", reference="ghost",
                            top_k=1, results={"a": ok})

    def test_response_rejects_empty_results(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            CompareResponse(namespace="n", target="t", reference="a",
                            top_k=1, results={})

    def test_correlations_omitted_not_null_on_the_wire(self):
        """When the reference shed, ok entries carry no correlation keys
        at all (omitted, not null) — the additive-protocol style."""
        ok = StrategyComparison(status="ok", ranking=(("m0", 1.0),))
        payload = json.loads(json.dumps(ok.to_dict()))
        assert "pearson" not in payload
        assert "retry_after_s" not in payload


# ---------------------------------------------------------------------- #
# the comparison math
# ---------------------------------------------------------------------- #
class TestRankingMetrics:
    REF = [("m0", 3.0), ("m1", 2.0), ("m2", 1.0)]

    def test_identical_ranking(self):
        assert ranking_metrics(self.REF, list(self.REF), 3) == \
            (1.0, 1.0, 1.0)

    def test_reversed_ranking(self):
        flipped = [("m2", 3.0), ("m1", 2.0), ("m0", 1.0)]
        pearson, spearman, overlap = ranking_metrics(self.REF, flipped, 1)
        assert pearson == -1.0
        assert spearman == -1.0
        assert overlap == 0.0  # top-1 sets are disjoint

    def test_overlap_counts_sets_not_order(self):
        swapped = [("m1", 9.0), ("m0", 8.0), ("m2", 1.0)]
        _, _, overlap = ranking_metrics(self.REF, swapped, 2)
        assert overlap == 1.0  # same top-2 set, different order inside

    def test_k_clamped_to_roster(self):
        assert ranking_metrics(self.REF, list(self.REF), 50)[2] == 1.0

    def test_disjoint_model_sets_rejected(self):
        with pytest.raises(ValueError, match="different model sets"):
            ranking_metrics(self.REF, [("mX", 1.0)], 3)


class TestBuildComparisons:
    RANKS = {"a": [("m0", 2.0), ("m1", 1.0)],
             "b": [("m1", 5.0), ("m0", 0.0)]}

    def test_reference_scores_itself_perfectly(self):
        results = build_comparisons(dict(self.RANKS), {}, reference="a",
                                    top_k=1)
        assert results["a"].pearson == 1.0
        assert results["a"].top_k_overlap == 1.0
        assert results["b"].pearson == -1.0
        assert results["b"].top_k_overlap == 0.0

    def test_shed_reference_drops_correlations(self):
        results = build_comparisons({"b": self.RANKS["b"]},
                                    {"a": 1.5}, reference="a", top_k=1)
        assert results["a"].status == "shed"
        assert results["a"].retry_after_s == 1.5
        assert results["b"].status == "ok"
        assert results["b"].pearson is None
        assert results["b"].top_k_overlap is None

    def test_rejects_unknown_reference(self):
        with pytest.raises(ValueError, match="reference"):
            build_comparisons(dict(self.RANKS), {}, reference="ghost",
                              top_k=1)

    def test_rejects_ok_and_shed_overlap(self):
        with pytest.raises(ValueError, match="both ok and shed"):
            build_comparisons(dict(self.RANKS), {"a": 0.5}, reference="a",
                              top_k=1)


# ---------------------------------------------------------------------- #
# the gateway fan-out
# ---------------------------------------------------------------------- #
class TestGatewayCompare:
    def test_fans_across_the_whole_strategy_map(self):
        gateway = compare_gateway()
        try:
            response = run(gateway.compare(
                CompareRequest(target="t0", namespace="alpha")))
        finally:
            gateway.close()
        assert set(response.results) == {"tg:lr,n2v,all", "agree", "flip"}
        assert response.reference == "tg:lr,n2v,all"  # namespace default
        assert response.top_k == 3  # DEFAULT_COMPARE_TOP_K
        assert all(c.status == "ok" for c in response.results.values())
        # the stub default ranks m0 > m1 > m2; agree matches, flip inverts
        assert response.results["agree"].pearson == 1.0
        assert response.results["agree"].spearman == 1.0
        assert response.results["flip"].pearson == -1.0
        # live latency percentiles ride along for every strategy
        for comparison in response.results.values():
            assert "p95_ms" in comparison.latency
            assert "fit_p95_ms" in comparison.latency

    def test_wire_round_trip_is_byte_stable(self):
        gateway = compare_gateway()
        try:
            response = run(gateway.compare(
                CompareRequest(target="t0", namespace="alpha")))
        finally:
            gateway.close()
        encoded = response.to_json()
        assert CompareResponse.from_json(encoded).to_json() == encoded

    def test_subset_fan_out_includes_reference_implicitly(self):
        gateway = compare_gateway()
        try:
            response = run(gateway.compare(CompareRequest(
                target="t0", namespace="alpha", strategies=("agree",))))
        finally:
            gateway.close()
        # reference (namespace default) joined the fan-out uninvited
        assert set(response.results) == {"tg:lr,n2v,all", "agree"}
        assert response.reference == "tg:lr,n2v,all"

    def test_explicit_reference_and_alias_spelling(self):
        gateway = compare_gateway()
        try:
            response = run(gateway.compare(CompareRequest(
                target="t0", namespace="alpha",
                strategies=("tg:lr,node2vec,all",),  # alias spelling
                reference="agree")))
        finally:
            gateway.close()
        assert response.reference == "agree"
        assert set(response.results) == {"tg:lr,n2v,all", "agree"}
        assert response.results["tg:lr,n2v,all"].pearson == 1.0

    def test_top_k_clamped_to_model_roster(self):
        gateway = compare_gateway()
        try:
            response = run(gateway.compare(CompareRequest(
                target="t0", namespace="alpha", top_k=50)))
        finally:
            gateway.close()
        assert response.top_k == 3  # StubZoo serves three models

    def test_unknown_namespace(self):
        gateway = compare_gateway()
        try:
            with pytest.raises(UnknownNamespaceError):
                run(gateway.compare(CompareRequest(target="t0",
                                                   namespace="ghost")))
        finally:
            gateway.close()

    def test_unknown_target(self):
        gateway = compare_gateway()
        try:
            with pytest.raises(UnknownTargetError):
                run(gateway.compare(CompareRequest(target="ghost",
                                                   namespace="alpha")))
        finally:
            gateway.close()

    def test_unknown_strategy_in_fan_out_set(self):
        gateway = compare_gateway()
        try:
            with pytest.raises(UnknownStrategyError):
                run(gateway.compare(CompareRequest(
                    target="t0", namespace="alpha",
                    strategies=("agree", "nope"))))
        finally:
            gateway.close()

    def test_unknown_reference_strategy(self):
        gateway = compare_gateway()
        try:
            with pytest.raises(UnknownStrategyError):
                run(gateway.compare(CompareRequest(
                    target="t0", namespace="alpha", reference="nope")))
        finally:
            gateway.close()

    def test_shed_strategy_marks_partial_failure(self):
        """One strategy shedding must not fail the whole compare."""
        gateway = compare_gateway()

        async def scenario():
            router = gateway.router("alpha", "flip")

            async def shed_rank(target, top_k=None):
                raise QueueFullError("cold-fit queue full", retry_after_s=2.5)

            router.rank = shed_rank
            return await gateway.compare(
                CompareRequest(target="t0", namespace="alpha"))

        try:
            response = run(scenario())
        finally:
            gateway.close()
        assert response.results["flip"].status == "shed"
        assert response.results["flip"].retry_after_s == 2.5
        assert response.results["flip"].latency  # live stats still ride
        assert response.results["agree"].status == "ok"
        assert response.results["agree"].pearson == 1.0

    def test_shed_reference_keeps_rankings_drops_correlations(self):
        gateway = compare_gateway()

        async def scenario():
            router = gateway.router("alpha")  # the default strategy

            async def shed_rank(target, top_k=None):
                raise QueueFullError("cold-fit queue full", retry_after_s=1.0)

            router.rank = shed_rank
            return await gateway.compare(
                CompareRequest(target="t0", namespace="alpha"))

        try:
            response = run(scenario())
        finally:
            gateway.close()
        assert response.results["tg:lr,n2v,all"].status == "shed"
        for spec in ("agree", "flip"):
            assert response.results[spec].status == "ok"
            assert response.results[spec].ranking
            assert response.results[spec].pearson is None

    def test_real_shedding_under_a_full_queue(self):
        """An actually saturated fit queue sheds the compare's slice."""
        gateway = stub_gateway(
            names=("alpha",), fit_seconds=0.25, max_pending_fits=1,
            strategies=(StubStrategy("agree", STUB_SCORES["agree"]),))

        async def scenario():
            slow = asyncio.ensure_future(gateway.rank(
                RankRequest(target="t1", namespace="alpha")))
            await asyncio.sleep(0.05)  # the default strategy's slot is taken
            response = await gateway.compare(
                CompareRequest(target="t2", namespace="alpha",
                               reference="agree"))
            await slow
            return response

        try:
            response = run(scenario())
        finally:
            gateway.close()
        assert response.results["tg:lr,n2v,all"].status == "shed"
        assert response.results["tg:lr,n2v,all"].retry_after_s > 0
        assert response.results["agree"].status == "ok"


# ---------------------------------------------------------------------- #
# per-strategy fit budgets
# ---------------------------------------------------------------------- #
class TestFitBudgets:
    def test_default_budgets_unchanged(self):
        gateway = compare_gateway(max_pending_fits=8)
        try:
            for spec in gateway.strategies("alpha"):
                assert gateway.router("alpha", spec).max_pending_fits == 8
        finally:
            gateway.close()

    def test_weighted_budgets_scale_by_fit_cost(self):
        gateway = compare_gateway(max_pending_fits=8,
                                  fit_budgets="weighted")
        try:
            # the stub TG default carries the graph-feature weight (4.0)
            assert gateway.router("alpha").max_pending_fits == 2
            assert gateway.router("alpha", "agree").max_pending_fits == 32
            assert gateway.router("alpha", "flip").max_pending_fits == 2
        finally:
            gateway.close()

    def test_weighted_budget_floors_at_one(self):
        gateway = compare_gateway(max_pending_fits=1,
                                  fit_budgets="weighted")
        try:
            assert gateway.router("alpha", "flip").max_pending_fits == 1
        finally:
            gateway.close()

    def test_explicit_budgets_override_weighted_defaults(self):
        gateway = compare_gateway(
            max_pending_fits=8,
            # alias spelling must resolve like request routing does
            fit_budgets={"tg:lr,node2vec,all": 5})
        try:
            assert gateway.router("alpha").max_pending_fits == 5
            assert gateway.router("alpha", "agree").max_pending_fits == 32
        finally:
            gateway.close()

    def test_unknown_budget_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            compare_gateway(fit_budgets={"ghost": 3})

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            compare_gateway(fit_budgets={"agree": 0})

    def test_duplicate_alias_spellings_rejected(self):
        """Two spellings of one strategy must not silently last-win."""
        with pytest.raises(ValueError, match="duplicates"):
            compare_gateway(fit_budgets={"tg:lr,n2v,all": 4,
                                         "tg:lr,node2vec,all": 32})

    def test_strategies_declare_fit_weights(self):
        from repro.strategies import get_strategy

        assert get_strategy("logme").fit_weight == 0.25
        assert get_strategy("random").fit_weight == 0.25
        assert get_strategy("tg:lr,n2v,all").fit_weight == 4.0
        assert get_strategy("lr:basic").fit_weight == 1.0  # graph-less


# ---------------------------------------------------------------------- #
# the served evaluation engine
# ---------------------------------------------------------------------- #
class TestServedEvaluation:
    def test_report_schema_and_aggregates(self):
        gateway = compare_gateway(fit_budgets="weighted")
        try:
            report = run(served_evaluation(gateway, "alpha", top_k=2))
        finally:
            gateway.close()
        assert report["benchmark"] == "compare_served"
        assert report["protocol"] == "v1"
        assert report["namespace"] == "alpha"
        assert report["reference"] == "tg:lr,n2v,all"
        assert report["top_k"] == 2
        assert report["targets"] == ["t0", "t1", "t2", "t3"]
        assert set(report["strategies"]) == {"tg:lr,n2v,all", "agree",
                                             "flip"}
        agree = report["strategies"]["agree"]
        assert agree["mean_pearson"] == 1.0
        assert agree["mean_top_k_overlap"] == 1.0
        assert agree["targets_ok"] == 4
        assert agree["targets_shed"] == 0
        assert agree["fit_budget"] == 32
        assert agree["warm_rank_p95_ms"] >= 0.0
        flip = report["strategies"]["flip"]
        assert flip["mean_pearson"] == -1.0
        assert flip["mean_top_k_overlap"] == pytest.approx(0.5)

    def test_warm_latency_window_covers_only_the_compare_pass(self):
        gateway = compare_gateway()
        try:
            report = run(served_evaluation(gateway, "alpha",
                                           targets=["t0", "t1"]))
            # one rank query per strategy per target, nothing else
            for spec in report["strategies"]:
                stats = gateway.router("alpha", spec).service.stats()
                assert stats["queries"] == 2
        finally:
            gateway.close()

    def test_subset_and_explicit_reference(self):
        gateway = compare_gateway()
        try:
            report = run(served_evaluation(
                gateway, "alpha", strategies=["flip"], reference="agree",
                targets=["t0"]))
        finally:
            gateway.close()
        assert set(report["strategies"]) == {"agree", "flip"}
        assert report["reference"] == "agree"

    def test_empty_target_list_rejected(self):
        gateway = compare_gateway()
        try:
            with pytest.raises(ValueError, match="no targets"):
                run(served_evaluation(gateway, "alpha", targets=[]))
        finally:
            gateway.close()

    def test_write_report_round_trips(self, tmp_path):
        report = {"benchmark": "compare_served", "strategies": {"a": 1}}
        path = write_report(tmp_path / "deep" / "BENCH_compare.json",
                            report)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report
        # stable bytes: keys are sorted, so identical reports diff clean
        assert text == json.dumps(report, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------- #
# compare traffic in synthetic workloads
# ---------------------------------------------------------------------- #
class TestWorkloadCompare:
    def test_generate_mixes_compare_requests(self):
        gateway = compare_gateway()
        try:
            zoo = gateway.service("alpha").zoo
            workload = generate_workload(
                zoo, WorkloadConfig(num_queries=40, batch_fraction=0.2,
                                    compare_fraction=0.3, seed=1),
                namespace="alpha")
            compares = [r for r in workload
                        if isinstance(r, CompareRequest)]
            assert 0 < len(compares) < 40
            summary = replay_concurrent(gateway, workload, clients=2)
            assert summary["queries"] > 0
        finally:
            gateway.close()

    def test_fractions_must_fit_in_one(self):
        with pytest.raises(ValueError, match="not exceed 1"):
            WorkloadConfig(batch_fraction=0.8, compare_fraction=0.3)

    def test_compare_fraction_zero_keeps_streams_identical(self):
        gateway = compare_gateway()
        try:
            zoo = gateway.service("alpha").zoo
        finally:
            gateway.close()
        plain = generate_workload(zoo, WorkloadConfig(num_queries=20,
                                                      seed=3))
        explicit = generate_workload(
            zoo, WorkloadConfig(num_queries=20, compare_fraction=0.0,
                                seed=3))
        assert [r.to_json() for r in plain] == \
            [r.to_json() for r in explicit]


# ---------------------------------------------------------------------- #
# the CI benchmark gate
# ---------------------------------------------------------------------- #
def _load_gate():
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "compare_gate.py"
    spec = importlib.util.spec_from_file_location("compare_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCompareGate:
    BASE = {
        "benchmark": "compare_served",
        "protocol": "v1",
        "namespace": "image",
        "reference": "tg:lr,n2v,all",
        "top_k": 3,
        "targets": ["a", "b", "c"],
        "strategies": {
            "tg:lr,n2v,all": {"mean_top_k_overlap": 1.0,
                              "warm_rank_p95_ms": 2.0,
                              "targets_shed": 0},
            "logme": {"mean_top_k_overlap": 0.667,
                      "warm_rank_p95_ms": 1.0,
                      "targets_shed": 0},
        },
    }

    def _run(self, tmp_path, current, baseline, *extra):
        import copy
        import json as _json

        gate = _load_gate()
        current_path = tmp_path / "current.json"
        baseline_path = tmp_path / "baseline.json"
        current_path.write_text(_json.dumps(current))
        baseline_path.write_text(_json.dumps(copy.deepcopy(baseline)))
        return gate.main([str(current_path), str(baseline_path), *extra])

    def test_identical_reports_pass(self, tmp_path, capsys):
        assert self._run(tmp_path, self.BASE, self.BASE) == 0
        assert "PASS" in capsys.readouterr().out

    def test_overlap_drop_fails(self, tmp_path, capsys):
        import copy

        current = copy.deepcopy(self.BASE)
        current["strategies"]["logme"]["mean_top_k_overlap"] = 0.3
        assert self._run(tmp_path, current, self.BASE) == 1
        assert "overlap" in capsys.readouterr().out

    def test_overlap_jitter_within_tolerance_passes(self, tmp_path):
        import copy

        current = copy.deepcopy(self.BASE)
        current["strategies"]["logme"]["mean_top_k_overlap"] = 0.61
        assert self._run(tmp_path, current, self.BASE) == 0

    def test_p95_regression_beyond_grace_fails(self, tmp_path, capsys):
        import copy

        current = copy.deepcopy(self.BASE)
        current["strategies"]["logme"]["warm_rank_p95_ms"] = 500.0
        assert self._run(tmp_path, current, self.BASE) == 1
        assert "regressed" in capsys.readouterr().out

    def test_ms_scale_noise_within_grace_passes(self, tmp_path):
        import copy

        # 5x relative regression but well inside the absolute grace: a
        # 1 ms -> 5 ms wobble must not fail CI on a slow runner
        current = copy.deepcopy(self.BASE)
        current["strategies"]["logme"]["warm_rank_p95_ms"] = 5.0
        assert self._run(tmp_path, current, self.BASE) == 0

    def test_missing_strategy_fails(self, tmp_path, capsys):
        import copy

        current = copy.deepcopy(self.BASE)
        del current["strategies"]["logme"]
        assert self._run(tmp_path, current, self.BASE) == 1
        assert "missing" in capsys.readouterr().out

    def test_shed_targets_fail(self, tmp_path, capsys):
        import copy

        current = copy.deepcopy(self.BASE)
        current["strategies"]["logme"]["targets_shed"] = 1
        assert self._run(tmp_path, current, self.BASE) == 1
        assert "shed" in capsys.readouterr().out

    def test_changed_reference_is_a_usage_error(self, tmp_path, capsys):
        """Incomparable reports exit 2, distinct from a regression's 1."""
        import copy

        current = copy.deepcopy(self.BASE)
        current["reference"] = "logme"
        current["strategies"]["logme"]["mean_top_k_overlap"] = 1.0
        with pytest.raises(SystemExit) as exc_info:
            self._run(tmp_path, current, self.BASE)
        assert exc_info.value.code == 2
        assert "reference" in capsys.readouterr().err

    def test_changed_target_roster_is_a_usage_error(self, tmp_path,
                                                    capsys):
        """Overlap means average per target: a different roster would
        silently compare different quantities."""
        import copy

        current = copy.deepcopy(self.BASE)
        current["targets"] = ["a", "b"]
        with pytest.raises(SystemExit) as exc_info:
            self._run(tmp_path, current, self.BASE)
        assert exc_info.value.code == 2
        assert "targets" in capsys.readouterr().err

    def test_non_report_json_is_a_usage_error(self, tmp_path):
        import json as _json

        gate = _load_gate()
        bogus = tmp_path / "bogus.json"
        bogus.write_text(_json.dumps({"benchmark": "something_else"}))
        with pytest.raises(SystemExit) as exc_info:
            gate.main([str(bogus), str(bogus)])
        assert exc_info.value.code == 2

    def test_committed_baseline_is_a_loadable_report(self):
        from pathlib import Path

        gate = _load_gate()
        baseline = Path(__file__).resolve().parent.parent / "benchmarks" \
            / "baselines" / "compare_baseline.json"
        report = gate.load_report(baseline)
        # the acceptance roster rides in the committed baseline
        assert set(report["strategies"]) == {"tg:lr,n2v,all", "logme",
                                             "random"}
        assert report["reference"] == "tg:lr,n2v,all"
        assert report["top_k"] == 3
