"""Parallel cold fits + adaptive backpressure.

`TransferGraph.fit` lazily records derived similarity/transferability
scores into the *shared* zoo catalog; since that recording is
lock-guarded (scoped batches merged under ``ZooCatalog.lock``), distinct
targets may fit concurrently.  These tests prove the results are
identical to serial fits even when the derived tables start empty, that
the router actually overlaps fits, and that the shed-retry hint tracks
the stats-window p95 fit latency.
"""

from __future__ import annotations

import asyncio
import copy
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import FeatureSet, TransferGraph, TransferGraphConfig
from repro.serving import AsyncSelectionRouter, QueueFullError
from repro.store import ZooCatalog

from serving_stubs import stub_service


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


def _zoo_with_cold_catalog(zoo):
    """A shallow zoo clone whose derived score tables start empty.

    Ground truth (models/datasets/history) is copied; similarity and
    transferability are dropped so concurrent fits must race on the
    lazy check-and-fill paths the catalog lock guards.
    """
    catalog = ZooCatalog()
    for table in ("models", "datasets", "history"):
        getattr(catalog, table).load_records(
            getattr(zoo.catalog, table).to_records())
    clone = copy.copy(zoo)
    clone.catalog = catalog
    return clone


class TestConcurrentFitCorrectness:
    def test_concurrent_cold_fits_match_serial(self, tiny_image_zoo,
                                               lr_config):
        """Two threads fitting distinct targets against a cold catalog
        produce the same pipelines a serial pass does."""
        targets = tiny_image_zoo.target_names()[:2]
        model_ids = tiny_image_zoo.model_ids()

        serial_zoo = _zoo_with_cold_catalog(tiny_image_zoo)
        serial = {t: TransferGraph(lr_config).fit(serial_zoo, t)
                  for t in targets}

        concurrent_zoo = _zoo_with_cold_catalog(tiny_image_zoo)
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = {t: pool.submit(TransferGraph(lr_config).fit,
                                      concurrent_zoo, t) for t in targets}
            concurrent = {t: f.result() for t, f in futures.items()}

        for target in targets:
            assert concurrent[target].predict(model_ids) == pytest.approx(
                serial[target].predict(model_ids), rel=1e-12)

        # Both catalogs converged to the same derived-score tables.
        assert len(concurrent_zoo.catalog.transferability) == \
            len(serial_zoo.catalog.transferability)
        assert len(concurrent_zoo.catalog.similarity) == \
            len(serial_zoo.catalog.similarity)

    def test_router_default_enables_parallel_fits(self):
        assert AsyncSelectionRouter(stub_service()).fit_workers > 1

    def test_distinct_targets_fit_in_parallel(self):
        """Wall-clock proof: two 0.2 s fits overlap on two workers."""
        service = stub_service(fit_seconds=0.2)
        router = AsyncSelectionRouter(service, fit_workers=2)

        async def storm():
            started = time.perf_counter()
            await asyncio.gather(router.rank("t0"), router.rank("t1"))
            return time.perf_counter() - started

        elapsed = asyncio.run(storm())
        stats = router.stats()
        router.close()
        assert stats["fits"] == 2
        assert elapsed < 0.35  # serial would be >= 0.4

    def test_single_worker_still_serialises(self):
        service = stub_service(fit_seconds=0.1)
        router = AsyncSelectionRouter(service, fit_workers=1)

        async def storm():
            started = time.perf_counter()
            await asyncio.gather(router.rank("t0"), router.rank("t1"))
            return time.perf_counter() - started

        elapsed = asyncio.run(storm())
        router.close()
        assert elapsed >= 0.2


class TestAdaptiveBackpressure:
    def test_hint_floors_until_window_has_samples(self):
        router = AsyncSelectionRouter(stub_service(), retry_after_s=0.4)
        assert router._retry_after_hint() == 0.4
        router.close()

    def test_hint_tracks_p95_times_drain_rounds(self):
        router = AsyncSelectionRouter(stub_service(), retry_after_s=0.1,
                                      fit_workers=2)
        for _ in range(20):
            router._stats.record_latency("fit_ms", 1000.0)
        router._pending_fits = 4
        # p95 = 1 s, 4 pending over 2 workers -> 2 drain rounds -> 2 s
        assert router._retry_after_hint() == pytest.approx(2.0)
        router._pending_fits = 0
        router.close()

    def test_p95_not_mean_drives_the_hint(self):
        """One slow outlier must dominate the hint (a mean would hide
        it and shed clients would come back too early)."""
        router = AsyncSelectionRouter(stub_service(), retry_after_s=0.01,
                                      fit_workers=1)
        for _ in range(19):
            router._stats.record_latency("fit_ms", 10.0)
        router._stats.record_latency("fit_ms", 2000.0)
        router._pending_fits = 1
        hint = router._retry_after_hint()
        mean_s = (19 * 10.0 + 2000.0) / 20 / 1e3
        assert hint > mean_s  # p95 ~= 1.06 s >> mean ~= 0.11 s
        router._pending_fits = 0
        router.close()

    def test_shed_requests_carry_the_adaptive_hint(self):
        service = stub_service(fit_seconds=0.05)
        router = AsyncSelectionRouter(service, max_pending_fits=1,
                                      overflow="reject", retry_after_s=0.01,
                                      fit_workers=1)

        async def scenario():
            await router.rank("t0")  # seeds the fit_ms window (~50 ms)
            blocker = asyncio.ensure_future(router.rank("t1"))
            await asyncio.sleep(0.01)  # t1 occupies the only slot
            with pytest.raises(QueueFullError) as exc_info:
                await router.rank("t2")
            await blocker
            return exc_info.value

        exc = asyncio.run(scenario())
        router.close()
        # hint ~= observed p95 fit latency (>= the 50 ms sleep), not the
        # 10 ms floor
        assert exc.retry_after_s >= 0.04
