"""Behavioural tests distinguishing the Amazon-LR feature variants."""

import numpy as np
from repro.baselines import AmazonLR
from repro.core import evaluate_strategy


class TestVariantFeatures:
    def test_variants_produce_different_scores(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        basic = AmazonLR("basic").scores_for_target(zoo, target)
        full = AmazonLR("all+logme").scores_for_target(zoo, target)
        ids = sorted(basic)
        assert not np.allclose([basic[m] for m in ids],
                               [full[m] for m in ids])

    def test_all_variant_sees_similarity(self, tiny_image_zoo):
        """LR{all} scores depend on the target (via similarity); LR's
        near-constant ordering does not."""
        zoo = tiny_image_zoo
        t1, t2 = zoo.target_names()[:2]
        s1 = AmazonLR("all").scores_for_target(zoo, t1)
        s2 = AmazonLR("all").scores_for_target(zoo, t2)
        ids = sorted(s1)
        diff = np.array([s1[m] for m in ids]) - np.array([s2[m] for m in ids])
        # per-model differences are not all identical: the similarity
        # feature injects genuine model×target variation
        assert diff.std() > 1e-9

    def test_label_method_switch(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        zoo.ensure_lora_history()
        target = zoo.target_names()[0]
        ft = AmazonLR("basic").scores_for_target(zoo, target)
        lora = AmazonLR("basic", label_method="lora") \
            .scores_for_target(zoo, target)
        ids = sorted(ft)
        assert not np.allclose([ft[m] for m in ids], [lora[m] for m in ids])

    def test_all_variants_evaluable(self, tiny_image_zoo):
        for variant in ("basic", "all", "all+logme"):
            ev = evaluate_strategy(AmazonLR(variant), tiny_image_zoo)
            assert np.isfinite(ev.average_correlation())
