"""Artifact round-trips: predictor states, registry save/load, staleness."""

import json

import numpy as np
import pytest

from repro.core import FeatureSet, TransferGraph, TransferGraphConfig
from repro.predictors import PREDICTORS, get_predictor
from repro.serving import (
    ArtifactNotFoundError,
    ArtifactRegistry,
    StaleArtifactError,
    catalog_fingerprint,
    config_fingerprint,
    config_from_dict,
)
from repro.strategies.artifacts import _pack_value, _unpack_value

SMALL_HYPERPARAMS = {
    "lr": {},
    "tree": {"max_depth": 4},
    "rf": {"n_estimators": 8},
    "xgb": {"n_estimators": 20},
}


def regression_data(n=80, d=6, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = x @ rng.normal(size=d) + 0.1 * rng.normal(size=n)
    return x, y


def roundtrip_through_files(state: dict, tmp_path) -> dict:
    """Serialise a state dict exactly the way the registry does."""
    arrays: dict[str, np.ndarray] = {}
    meta = _pack_value(state, arrays, "state")
    (tmp_path / "meta.json").write_text(json.dumps(meta, sort_keys=True))
    np.savez_compressed(tmp_path / "arrays.npz", **arrays)
    loaded_meta = json.loads((tmp_path / "meta.json").read_text())
    with np.load(tmp_path / "arrays.npz") as npz:
        loaded_arrays = {key: npz[key] for key in npz.files}
    return _unpack_value(loaded_meta, loaded_arrays)


class TestPredictorStateRoundTrip:
    @pytest.mark.parametrize("alias", sorted(PREDICTORS))
    def test_save_load_predict_bit_identical(self, alias, tmp_path):
        x, y = regression_data()
        model = get_predictor(alias, **SMALL_HYPERPARAMS[alias]).fit(x, y)
        state = roundtrip_through_files(model.get_state(), tmp_path)
        revived = get_predictor(alias).set_state(state)
        assert np.array_equal(model.predict(x), revived.predict(x))

    @pytest.mark.parametrize("alias", sorted(PREDICTORS))
    def test_get_state_requires_fit(self, alias):
        with pytest.raises(RuntimeError):
            get_predictor(alias).get_state()


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


class TestRegistryRoundTrip:
    @pytest.mark.parametrize("alias", sorted(PREDICTORS))
    def test_rankings_identical_after_reload(self, alias, tiny_image_zoo,
                                             tmp_path):
        zoo = tiny_image_zoo
        config = TransferGraphConfig(predictor=alias, embedding_dim=16,
                                     features=FeatureSet.everything())
        target = zoo.target_names()[0]
        fitted = TransferGraph(config).fit(zoo, target)

        registry = ArtifactRegistry(tmp_path)
        registry.save(fitted, config, zoo)
        revived = registry.load(target, config, zoo)

        ids = zoo.model_ids()
        assert np.array_equal(fitted.predict(ids), revived.predict(ids))
        assert fitted.rank(ids) == revived.rank(ids)
        assert revived.feature_names == fitted.feature_names
        assert revived.graph_stats == fitted.graph_stats

    def test_contains_and_targets(self, tiny_image_zoo, tmp_path, lr_config):
        zoo = tiny_image_zoo
        target = zoo.target_names()[1]
        registry = ArtifactRegistry(tmp_path)
        assert not registry.contains(target, lr_config)
        assert registry.targets(lr_config) == []
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry.save(fitted, lr_config, zoo)
        assert registry.contains(target, lr_config)
        assert registry.targets(lr_config) == [target]
        assert registry.delete(target, lr_config)
        assert not registry.contains(target, lr_config)

    def test_missing_artifact_raises(self, tiny_image_zoo, tmp_path,
                                     lr_config):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            registry.load("caltech101", lr_config, tiny_image_zoo)

    def test_catalog_mismatch_raises(self, tiny_image_zoo, tmp_path,
                                     lr_config):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        registry.save(fitted, lr_config, zoo)

        model_id = zoo.model_ids()[0]
        row = zoo.catalog.history.get_or_none(model_id, target, "finetune")
        zoo.catalog.record_history(model_id, target, row["accuracy"] + 0.01,
                                   epochs=row["epochs"])
        try:
            with pytest.raises(StaleArtifactError):
                registry.load(target, lr_config, zoo)
        finally:
            zoo.catalog.record_history(model_id, target, row["accuracy"],
                                       epochs=row["epochs"])
        # Ground truth restored: the artifact is fresh again.
        registry.load(target, lr_config, zoo)

    def test_format_version_mismatch_raises(self, tiny_image_zoo, tmp_path,
                                            lr_config):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 0
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StaleArtifactError):
            registry.load(target, lr_config, zoo)

    def test_corrupt_meta_raises_artifact_error(self, tiny_image_zoo,
                                                tmp_path, lr_config):
        from repro.serving import ArtifactError

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        (path / "meta.json").write_text('{"format_version": 1, "trunc')
        with pytest.raises(ArtifactError):
            registry.load(target, lr_config, zoo)

    def test_missing_arrays_raises_artifact_error(self, tiny_image_zoo,
                                                  tmp_path, lr_config):
        from repro.serving import ArtifactError

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        (path / "arrays.npz").unlink()
        with pytest.raises(ArtifactError):
            registry.load(target, lr_config, zoo)

    def test_config_mismatch_is_not_found(self, tiny_image_zoo, tmp_path,
                                          lr_config):
        """A different config lives in a different registry namespace."""
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        registry.save(fitted, lr_config, zoo)
        other = TransferGraphConfig(predictor="rf", embedding_dim=16,
                                    features=FeatureSet.everything())
        with pytest.raises(ArtifactNotFoundError):
            registry.load(target, other, zoo)


class TestFingerprints:
    def test_config_fingerprint_stable_and_discriminating(self):
        a = TransferGraphConfig(predictor="lr")
        b = TransferGraphConfig(predictor="lr")
        c = TransferGraphConfig(predictor="rf")
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(c)

    def test_config_round_trips_through_dict(self):
        from dataclasses import asdict

        config = TransferGraphConfig(predictor="rf", embedding_dim=16,
                                     features=FeatureSet.all_logme())
        revived = config_from_dict(asdict(config))
        assert revived == config
        assert config_fingerprint(revived) == config_fingerprint(config)

    def test_catalog_fingerprint_ignores_derived_tables(self, tiny_image_zoo):
        catalog = tiny_image_zoo.catalog
        before = catalog_fingerprint(catalog)
        catalog.record_transferability("some-model", "some-dataset",
                                       "logme", 0.5)
        try:
            assert catalog_fingerprint(catalog) == before
        finally:
            catalog.transferability.delete("some-model", "some-dataset",
                                           "logme")

    def test_catalog_fingerprint_tracks_ground_truth(self, tiny_image_zoo):
        catalog = tiny_image_zoo.catalog
        before = catalog_fingerprint(catalog)
        model_id = tiny_image_zoo.model_ids()[0]
        target = tiny_image_zoo.target_names()[0]
        row = catalog.history.get_or_none(model_id, target, "finetune")
        catalog.record_history(model_id, target, row["accuracy"] + 0.01,
                               epochs=row["epochs"])
        try:
            assert catalog_fingerprint(catalog) != before
        finally:
            catalog.record_history(model_id, target, row["accuracy"],
                                   epochs=row["epochs"])
        assert catalog_fingerprint(catalog) == before


class TestStoredGraph:
    """TG artifacts ship the pruned LOO graph: revival must not rebuild."""

    def test_meta_contains_graph_and_load_skips_rebuild(self, tiny_image_zoo,
                                                        tmp_path,
                                                        monkeypatch,
                                                        lr_config):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        meta = json.loads((path / "meta.json").read_text())
        assert meta["graph"]["nodes"]
        assert len(meta["graph"]["edges"]) > 0

        from repro.graph.builder import GraphBuilder

        def forbidden_build(self, exclude_target=None):
            raise AssertionError("registry-warm load rebuilt the LOO graph")

        monkeypatch.setattr(GraphBuilder, "build", forbidden_build)
        revived = registry.load(target, lr_config, zoo)
        ids = zoo.model_ids()
        assert np.array_equal(fitted.predict(ids), revived.predict(ids))

    def test_revived_graph_matches_the_fitted_one(self, tiny_image_zoo,
                                                  tmp_path, lr_config):
        zoo = tiny_image_zoo
        target = zoo.target_names()[1]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        registry.save(fitted, lr_config, zoo)
        revived = registry.load(target, lr_config, zoo)

        original, reconstructed = fitted.assembler.graph, \
            revived.assembler.graph
        assert reconstructed.nodes() == original.nodes()
        assert reconstructed.num_edges == original.num_edges
        assert sorted((e.u, e.v, e.kind, e.weight)
                      for e in reconstructed.edges()) == \
            sorted((e.u, e.v, e.kind, e.weight) for e in original.edges())

    def test_legacy_artifact_without_graph_still_loads(self, tiny_image_zoo,
                                                       tmp_path, lr_config):
        """Artifacts written before the graph was stored fall back to
        the deterministic catalog rebuild."""
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        meta = json.loads((path / "meta.json").read_text())
        del meta["graph"]
        (path / "meta.json").write_text(json.dumps(meta, sort_keys=True))

        revived = registry.load(target, lr_config, zoo)
        ids = zoo.model_ids()
        assert np.array_equal(fitted.predict(ids), revived.predict(ids))

    def test_corrupt_graph_payload_degrades_to_artifact_error(
            self, tiny_image_zoo, tmp_path, lr_config):
        from repro.serving import ArtifactError

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(lr_config).fit(zoo, target)
        registry = ArtifactRegistry(tmp_path)
        path = registry.save(fitted, lr_config, zoo)

        meta = json.loads((path / "meta.json").read_text())
        meta["graph"]["edges"] = meta["graph"]["edges"][:1]  # length lies
        (path / "meta.json").write_text(json.dumps(meta, sort_keys=True))
        with pytest.raises(ArtifactError):
            registry.load(target, lr_config, zoo)
