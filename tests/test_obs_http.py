"""The observability plane over the wire: /v1/metrics + request ids.

Drives a live loopback gateway through a rank (cold, warm, coalesced),
shed, and compare sequence, then asserts the Prometheus exposition at
``GET /v1/metrics`` carries every label set the sequence produced.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import EXPOSITION_CONTENT_TYPE
from repro.serving import GatewayHTTPServer

from serving_stubs import stub_gateway


def run(coro):
    return asyncio.run(coro)


async def http_request(host, port, method, path, body=None,
                       headers=()):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = body.encode() if isinstance(body, str) else (body or b"")
        head = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
        head.extend(f"{name}: {value}" for name, value in headers)
        if payload:
            head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head_raw, _, body_raw = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, body_raw


class TestRequestIds:
    def test_body_request_id_echoed_in_body_and_header(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
                await server.start()
                host, port = server.address
                result = await http_request(
                    host, port, "POST", "/v1/rank",
                    body=json.dumps({"namespace": "alpha", "target": "t0",
                                     "request_id": "trace-me-42"}))
                await server.close()
                return result
            finally:
                gateway.close()

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["x-request-id"] == "trace-me-42"
        assert json.loads(body)["request_id"] == "trace-me-42"

    def test_header_request_id_echoed_in_header_only(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
                await server.start()
                host, port = server.address
                result = await http_request(
                    host, port, "POST", "/v1/rank",
                    body=json.dumps({"namespace": "alpha",
                                     "target": "t0"}),
                    headers=(("X-Request-Id", "hdr-77"),))
                await server.close()
                return result
            finally:
                gateway.close()

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["x-request-id"] == "hdr-77"
        # the body field is additive: absent from the request, absent
        # from the response — the correlation id rides the header only
        assert "request_id" not in json.loads(body)

    def test_request_id_minted_when_absent(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
                await server.start()
                host, port = server.address
                result = await http_request(
                    host, port, "POST", "/v1/rank",
                    body=json.dumps({"namespace": "alpha",
                                     "target": "t0"}))
                await server.close()
                return result
            finally:
                gateway.close()

        status, headers, body = run(scenario())
        assert status == 200
        assert len(headers["x-request-id"]) == 16
        assert "request_id" not in json.loads(body)


class TestMetricsEndpoint:
    def test_exposition_after_rank_shed_compare_sequence(self):
        async def scenario():
            gateway = stub_gateway(
                names=("alpha",),
                targets=("t0", "t1", "t2", "t3", "t4"),
                fit_seconds=0.3, max_pending_fits=1, retry_after_s=0.25)
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
                await server.start()
                host, port = server.address

                async def rank(target):
                    status, _, _ = await http_request(
                        host, port, "POST", "/v1/rank",
                        body=json.dumps({"namespace": "alpha",
                                         "target": target}))
                    return status

                await rank("t0")                        # cold fit
                await rank("t0")                        # warm hit
                # two concurrent ranks for one target: cold + coalesced
                await asyncio.gather(rank("t1"), rank("t1"))
                # three distinct cold targets through a one-slot queue:
                # at least one shed 429
                statuses = await asyncio.gather(rank("t2"), rank("t3"),
                                                rank("t4"))
                assert 429 in statuses
                await http_request(
                    host, port, "POST", "/v1/compare",
                    body=json.dumps({"namespace": "alpha",
                                     "target": "t0"}))
                first = await http_request(host, port, "GET",
                                           "/v1/metrics")
                second = await http_request(host, port, "GET",
                                            "/v1/metrics")
                await server.close()
                return first, second
            finally:
                gateway.close()

        (status, headers, body), (_, _, second_body) = run(scenario())
        assert status == 200
        assert headers["content-type"] == EXPOSITION_CONTENT_TYPE
        text = body.decode()
        spec = "tg:lr,n2v,all"

        prefix = (f'repro_requests_total{{endpoint="rank",'
                  f'namespace="alpha",strategy="{spec}",outcome=')
        for outcome in ("cold", "warm", "coalesced", "shed"):
            assert f'{prefix}"{outcome}"}}' in text
        assert ('repro_requests_total{endpoint="compare",'
                'namespace="alpha",strategy="map",outcome=') in text

        for result in ("hit", "miss"):
            assert (f'repro_cache_lookups_total{{namespace="alpha",'
                    f'strategy="{spec}",result="{result}"}}') in text

        # latency histogram covers the rank traffic
        assert ('repro_request_latency_ms_bucket{endpoint="rank",'
                'namespace="alpha",le="+Inf"}') in text

        # live queue-depth gauge reads 0 once the traffic drains
        assert (f'repro_queue_depth{{namespace="alpha",'
                f'strategy="{spec}"}} 0') in text

        # HTTP responses counted by path and status, 429s included
        assert 'repro_http_responses_total{path="/v1/rank",status="200"}' \
            in text
        assert 'repro_http_responses_total{path="/v1/rank",status="429"}' \
            in text
        # the scrape itself is counted — visible from the next scrape
        assert ('repro_http_responses_total{path="/v1/metrics",'
                'status="200"}') in second_body.decode()

    def test_metrics_endpoint_renders_on_a_quiet_gateway(self):
        async def scenario():
            gateway = stub_gateway(names=("alpha",))
            try:
                server = GatewayHTTPServer(gateway, "127.0.0.1", 0)
                await server.start()
                host, port = server.address
                result = await http_request(host, port, "GET",
                                            "/v1/metrics")
                await server.close()
                return result
            finally:
                gateway.close()

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["content-type"] == EXPOSITION_CONTENT_TYPE
        text = body.decode()
        # families registered up front render HELP/TYPE even before
        # any series exists; the queue gauge is live from add_namespace
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_latency_ms histogram" in text
        assert 'repro_queue_depth{namespace="alpha"' in text
