"""Stub zoo/pipeline doubles shared by the serving concurrency tests.

A real fit on the tiny zoo takes hundreds of milliseconds; the
deterministic queue/overflow tests instead force exact timings with a
service whose "fit" is a controllable sleep that returns a lightweight
fake pipeline.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core import TransferGraphConfig
from repro.serving import SelectionService


class StubZoo:
    def __init__(self, targets=("t0", "t1", "t2", "t3")):
        self._targets = list(targets)

    def dataset_names(self):
        return list(self._targets)

    def target_names(self):
        return list(self._targets)

    def model_ids(self):
        return ["m0", "m1", "m2"]


class StubFitted:
    def __init__(self, target):
        self.target = target

    def rank(self, model_ids):
        return [(m, float(len(model_ids) - i))
                for i, m in enumerate(model_ids)]

    def predict(self, model_ids):
        return np.arange(len(model_ids), dtype=float)


def install_stub_fit(service: SelectionService, fit_seconds=0.0,
                     fail_first=0) -> None:
    """Replace a service's strategy fit with a controllable sleep."""
    lock, counter = threading.Lock(), [0]

    def fake_fit(zoo, target):
        if fit_seconds:
            time.sleep(fit_seconds)
        with lock:
            counter[0] += 1
            if counter[0] <= fail_first:
                raise RuntimeError(f"injected fit failure #{counter[0]}")
        return StubFitted(target)

    service.strategy.fit = fake_fit


def stub_service(targets=("t0", "t1", "t2", "t3"), fit_seconds=0.0,
                 fail_first=0, cache_size=32) -> SelectionService:
    """A SelectionService whose fits sleep instead of fitting.

    ``fail_first=k`` makes the first k fits raise, to test error
    propagation through coalesced futures.
    """
    service = SelectionService(StubZoo(targets), TransferGraphConfig(),
                               cache_size=cache_size)
    install_stub_fit(service, fit_seconds=fit_seconds, fail_first=fail_first)
    return service


def stub_gateway(names=("alpha", "beta"), targets=("t0", "t1", "t2", "t3"),
                 fit_seconds=0.0, **namespace_kwargs):
    """A SelectionGateway whose namespaces serve stub zoos.

    Each namespace gets its own StubZoo and sleep-fit service; extra
    kwargs (max_pending_fits, fit_workers, ...) apply to every
    namespace's router.
    """
    from repro.serving import SelectionGateway

    gateway = SelectionGateway()
    for name in names:
        service = gateway.add_namespace(name, StubZoo(targets),
                                        TransferGraphConfig(),
                                        **namespace_kwargs)
        install_stub_fit(service, fit_seconds=fit_seconds)
    return gateway
