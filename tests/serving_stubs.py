"""Stub zoo/pipeline doubles shared by the serving concurrency tests.

A real fit on the tiny zoo takes hundreds of milliseconds; the
deterministic queue/overflow tests instead force exact timings with a
service whose "fit" is a controllable sleep that returns a lightweight
fake pipeline.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core import TransferGraphConfig
from repro.serving import SelectionService
from repro.strategies import SelectionStrategy


class StubZoo:
    def __init__(self, targets=("t0", "t1", "t2", "t3")):
        self._targets = list(targets)

    def dataset_names(self):
        return list(self._targets)

    def target_names(self):
        return list(self._targets)

    def model_ids(self):
        return ["m0", "m1", "m2"]


class StubFitted:
    def __init__(self, target, scores=None):
        self.target = target
        #: model_id -> score; None keeps the legacy reverse-index scores
        self.scores = scores

    def rank(self, model_ids):
        if self.scores is None:
            return [(m, float(len(model_ids) - i))
                    for i, m in enumerate(model_ids)]
        return sorted(((m, float(self.scores[m])) for m in model_ids),
                      key=lambda kv: (-kv[1], kv[0]))

    def predict(self, model_ids):
        if self.scores is None:
            return np.arange(len(model_ids), dtype=float)
        return np.asarray([self.scores[m] for m in model_ids], dtype=float)


class StubStrategy(SelectionStrategy):
    """A SelectionStrategy double with fixed per-model scores.

    ``scores`` maps model_id -> score served for every target (so
    cross-strategy correlations are exactly computable in tests);
    ``fit_seconds`` makes the fit a controllable sleep and
    ``fit_weight`` feeds the gateway's weighted budget math.
    """

    requires_history = False

    def __init__(self, spec, scores, *, fit_seconds=0.0, fit_weight=1.0):
        self.spec = spec
        self.name = spec
        self.scores = dict(scores)
        self.fit_seconds = fit_seconds
        self.fit_weight = fit_weight

    def fit(self, zoo, target):
        if self.fit_seconds:
            time.sleep(self.fit_seconds)
        return StubFitted(target, self.scores)

    def fingerprint(self):
        return f"stub-{self.spec}"

    # pack/unpack double as the process-fit wire format, so stub
    # strategies can ride the process fit plane in tests too
    def pack(self, fitted, zoo):
        meta = {"kind": "stub", "target": fitted.target,
                "spec": self.spec, "scores": fitted.scores}
        return meta, {}

    def unpack(self, meta, arrays, zoo):
        return StubFitted(meta["target"], meta["scores"])

    def rank(self, zoo, target):
        return self.fit(zoo, target).rank(zoo.model_ids())

    def scores_for_target(self, zoo, target):
        return dict(self.scores)


def install_stub_fit(service: SelectionService, fit_seconds=0.0,
                     fail_first=0) -> None:
    """Replace a service's strategy fit with a controllable sleep."""
    lock, counter = threading.Lock(), [0]

    def fake_fit(zoo, target):
        if fit_seconds:
            time.sleep(fit_seconds)
        with lock:
            counter[0] += 1
            if counter[0] <= fail_first:
                raise RuntimeError(f"injected fit failure #{counter[0]}")
        return StubFitted(target)

    service.strategy.fit = fake_fit


def stub_service(targets=("t0", "t1", "t2", "t3"), fit_seconds=0.0,
                 fail_first=0, cache_size=32) -> SelectionService:
    """A SelectionService whose fits sleep instead of fitting.

    ``fail_first=k`` makes the first k fits raise, to test error
    propagation through coalesced futures.
    """
    service = SelectionService(StubZoo(targets), TransferGraphConfig(),
                               cache_size=cache_size)
    install_stub_fit(service, fit_seconds=fit_seconds, fail_first=fail_first)
    return service


def stub_gateway(names=("alpha", "beta"), targets=("t0", "t1", "t2", "t3"),
                 fit_seconds=0.0, strategies=(), **namespace_kwargs):
    """A SelectionGateway whose namespaces serve stub zoos.

    Each namespace gets its own StubZoo and sleep-fit service; extra
    kwargs (max_pending_fits, fit_workers, ...) apply to every
    namespace's router.  ``strategies`` adds extra rankers (e.g.
    :class:`StubStrategy` instances) to every namespace's map.
    """
    from repro.serving import SelectionGateway

    gateway = SelectionGateway()
    for name in names:
        service = gateway.add_namespace(name, StubZoo(targets),
                                        TransferGraphConfig(),
                                        strategies=strategies,
                                        **namespace_kwargs)
        install_stub_fit(service, fit_seconds=fit_seconds)
    return gateway


#: three-strategy score tables over StubZoo's m0/m1/m2 roster with known
#: pairwise relationships: ``agree`` ranks exactly like the default stub
#: fit (m0 > m1 > m2), ``flip`` ranks the reverse, ``tied`` is constant
STUB_SCORES = {
    "agree": {"m0": 3.0, "m1": 2.0, "m2": 1.0},
    "flip": {"m0": 1.0, "m1": 2.0, "m2": 3.0},
    "tied": {"m0": 1.0, "m1": 1.0, "m2": 1.0},
}
