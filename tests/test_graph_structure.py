"""Tests for the graph data structure and the Table II builder."""

import numpy as np
import pytest

from repro.graph import (
    GraphConfig,
    ModelDatasetGraph,
    build_graph,
)


def toy_graph():
    g = ModelDatasetGraph()
    g.add_node("d1", "dataset")
    g.add_node("d2", "dataset")
    g.add_node("m1", "model")
    g.add_node("m2", "model")
    g.add_edge("d1", "d2", 0.7, "similarity")
    g.add_edge("m1", "d1", 0.9, "accuracy")
    g.add_edge("m1", "d1", 0.6, "transferability")
    g.add_edge("m2", "d2", 0.8, "accuracy")
    return g


class TestGraphStructure:
    def test_counts(self):
        g = toy_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 4
        assert len(g.edges("accuracy")) == 2
        assert len(g.edges("similarity")) == 1

    def test_nodes_by_kind(self):
        g = toy_graph()
        assert g.nodes("model") == ["m1", "m2"]
        assert g.nodes("dataset") == ["d1", "d2"]

    def test_degree_counts_parallel_edges(self):
        g = toy_graph()
        assert g.degree("m1") == 2  # accuracy + transferability to d1
        assert g.degree("d2") == 2

    def test_average_degree(self):
        g = toy_graph()
        assert g.average_degree() == pytest.approx(2 * 4 / 4)

    def test_adjacency_sums_parallel_edges(self):
        g = toy_graph()
        idx = g.index()
        a = g.adjacency_matrix()
        assert a[idx["m1"], idx["d1"]] == pytest.approx(0.9 + 0.6)
        assert np.allclose(a, a.T)

    def test_unweighted_adjacency(self):
        g = toy_graph()
        idx = g.index()
        a = g.adjacency_matrix(weighted=False)
        assert a[idx["m1"], idx["d1"]] == 2.0  # two parallel edges

    def test_rejects_unknown_endpoint(self):
        g = toy_graph()
        with pytest.raises(KeyError):
            g.add_edge("m1", "ghost", 0.5, "accuracy")

    def test_rejects_self_loop(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            g.add_edge("m1", "m1", 0.5, "accuracy")

    def test_rejects_bad_kinds(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            g.add_node("x", "gizmo")
        with pytest.raises(ValueError):
            g.add_edge("m1", "d2", 0.5, "friendship")

    def test_node_kind_conflict(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            g.add_node("m1", "dataset")

    def test_has_edge(self):
        g = toy_graph()
        assert g.has_edge("m1", "d1")
        assert g.has_edge("d1", "m1")
        assert not g.has_edge("m1", "d2")

    def test_feature_matrix(self):
        g = toy_graph()
        g.node_features["m1"] = np.ones(3)
        g.node_features["d1"] = np.full(3, 2.0)
        X = g.feature_matrix()
        idx = g.index()
        assert X.shape == (4, 3)
        assert np.allclose(X[idx["m1"]], 1.0)
        assert np.allclose(X[idx["m2"]], 0.0)  # missing -> zeros

    def test_feature_matrix_dim_mismatch(self):
        g = toy_graph()
        g.node_features["m1"] = np.ones(3)
        g.node_features["d1"] = np.ones(5)
        with pytest.raises(ValueError, match="inconsistent"):
            g.feature_matrix()

    def test_to_networkx(self):
        nx_graph = toy_graph().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        # parallel m1-d1 edges collapse with max weight
        assert nx_graph["m1"]["d1"]["weight"] == pytest.approx(0.9)

    def test_stats_keys(self):
        stats = toy_graph().stats()
        assert stats["num_dd_edges"] == 1
        assert stats["num_md_accuracy_edges"] == 2
        assert stats["num_md_transferability_edges"] == 1


class TestGraphConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GraphConfig(accuracy_threshold=1.5)
        with pytest.raises(ValueError):
            GraphConfig(history_ratio=-0.1)


class TestGraphBuilder:
    def test_dd_edges_all_pairs(self, tiny_image_zoo):
        graph, _ = build_graph(tiny_image_zoo)
        n = len(tiny_image_zoo.dataset_names())
        assert len(graph.edges("similarity")) == n * (n - 1) // 2

    def test_loo_removes_target_md_edges(self, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        graph, _ = build_graph(tiny_image_zoo, exclude_target=target)
        for edge in graph.edges():
            if target in (edge.u, edge.v):
                assert edge.kind == "similarity"

    def test_loo_keeps_dd_edges_of_target(self, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        graph, _ = build_graph(tiny_image_zoo, exclude_target=target)
        assert graph.degree(target) > 0

    def test_unknown_target_rejected(self, tiny_image_zoo):
        with pytest.raises(KeyError):
            build_graph(tiny_image_zoo, exclude_target="nope")

    def test_links_follow_threshold(self, tiny_image_zoo):
        _, links = build_graph(tiny_image_zoo)
        n_models = len(tiny_image_zoo.model_ids())
        n_targets = len(tiny_image_zoo.target_names())
        assert len(links) == n_models * n_targets
        assert links.positive and links.negative

    def test_accuracy_edges_pruned_by_threshold(self, tiny_image_zoo):
        strict, _ = build_graph(tiny_image_zoo,
                                config=GraphConfig(accuracy_threshold=0.9,
                                                   include_pretrain_edges=False))
        loose, _ = build_graph(tiny_image_zoo,
                               config=GraphConfig(accuracy_threshold=0.1,
                                                  include_pretrain_edges=False))
        assert len(strict.edges("accuracy")) < len(loose.edges("accuracy"))

    def test_no_history_scenario(self, tiny_image_zoo):
        """§VII-C: graph built only from transferability edges."""
        config = GraphConfig(use_accuracy_edges=False,
                             include_pretrain_edges=False)
        graph, links = build_graph(tiny_image_zoo, config=config)
        assert len(graph.edges("accuracy")) == 0
        assert len(graph.edges("transferability")) > 0
        assert len(links) > 0  # labels from transferability scores

    def test_history_ratio_reduces_edges(self, tiny_image_zoo):
        full, full_links = build_graph(
            tiny_image_zoo, config=GraphConfig(include_pretrain_edges=False))
        partial, partial_links = build_graph(
            tiny_image_zoo,
            config=GraphConfig(history_ratio=0.3, include_pretrain_edges=False))
        assert len(partial_links) < len(full_links)
        assert len(partial.edges("accuracy")) <= len(full.edges("accuracy"))

    def test_history_ratio_deterministic(self, tiny_image_zoo):
        config = GraphConfig(history_ratio=0.5, seed=3)
        g1, l1 = build_graph(tiny_image_zoo, config=config)
        g2, l2 = build_graph(tiny_image_zoo, config=config)
        assert l1.positive == l2.positive
        assert g1.num_edges == g2.num_edges

    def test_node_features_attached(self, tiny_image_zoo):
        graph, _ = build_graph(tiny_image_zoo)
        X = graph.feature_matrix()
        assert X.shape[0] == graph.num_nodes
        assert np.abs(X).sum() > 0

    def test_edge_weights_in_unit_range(self, tiny_image_zoo):
        graph, _ = build_graph(tiny_image_zoo)
        for edge in graph.edges():
            assert 0.0 <= edge.weight <= 1.0
