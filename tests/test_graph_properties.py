"""Property-based tests for the graph structures (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import ModelDatasetGraph, WalkConfig, generate_walks
from repro.transferability import normalise_scores


def random_graph(seed: int, n_models: int, n_datasets: int,
                 edge_prob: float) -> ModelDatasetGraph:
    rng = np.random.default_rng(seed)
    g = ModelDatasetGraph()
    models = [f"m{i}" for i in range(n_models)]
    datasets = [f"d{i}" for i in range(n_datasets)]
    for m in models:
        g.add_node(m, "model")
    for d in datasets:
        g.add_node(d, "dataset")
    for m in models:
        for d in datasets:
            if rng.random() < edge_prob:
                g.add_edge(m, d, float(rng.random()), "accuracy")
    for i in range(n_datasets):
        for j in range(i + 1, n_datasets):
            if rng.random() < edge_prob:
                g.add_edge(datasets[i], datasets[j], float(rng.random()),
                           "similarity")
    return g


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 6), st.integers(2, 6),
       st.floats(0.1, 0.9))
def test_adjacency_symmetric_nonnegative(seed, n_models, n_datasets, p):
    g = random_graph(seed, n_models, n_datasets, p)
    a = g.adjacency_matrix()
    assert np.allclose(a, a.T)
    assert (a >= 0).all()
    assert np.allclose(np.diag(a), 0.0)  # no self-loops


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 5), st.integers(2, 5),
       st.floats(0.2, 0.9))
def test_handshake_lemma(seed, n_models, n_datasets, p):
    g = random_graph(seed, n_models, n_datasets, p)
    degree_sum = sum(g.degree(n) for n in g.nodes())
    assert degree_sum == 2 * g.num_edges


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_walks_never_leave_edge_set(seed):
    g = random_graph(seed, 4, 4, 0.5)
    walks = generate_walks(g, WalkConfig(num_walks=2, walk_length=6),
                           np.random.default_rng(seed))
    for walk in walks:
        for u, v in zip(walk[:-1], walk[1:]):
            assert g.has_edge(u, v)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                max_size=30))
def test_normalise_scores_idempotent_range(values):
    out = normalise_scores(values)
    assert (out >= 0).all() and (out <= 1).all()
    again = normalise_scores(out)
    np.testing.assert_allclose(np.argsort(out), np.argsort(again))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.2, 0.8))
def test_stats_consistent_with_edge_lists(seed, p):
    g = random_graph(seed, 3, 4, p)
    stats = g.stats()
    assert stats["num_edges"] == (stats["num_dd_edges"]
                                  + stats["num_md_accuracy_edges"]
                                  + stats["num_md_transferability_edges"])
    assert stats["num_nodes"] == stats["num_model_nodes"] + \
        stats["num_dataset_nodes"]
