"""Consistency tests tying estimators, catalog, and features together."""

import numpy as np
import pytest

from repro.transferability import (
    get_estimator,
    score_model_on_dataset,
    score_zoo,
)


class TestScoringConsistency:
    def test_score_matches_direct_estimator_call(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        model_id = zoo.model_ids()[0]
        target = zoo.target_names()[0]
        via_helper = score_model_on_dataset(zoo, model_id, target, "logme")
        estimator = get_estimator("logme")
        features = zoo.features(model_id, target, split="train")
        labels = zoo.dataset(target).y_train
        direct = estimator.score(features, labels)
        assert via_helper == pytest.approx(direct)

    def test_score_zoo_subset_of_targets(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        scores = score_zoo(zoo, metric="hscore", targets=[target],
                           record=False)
        assert {d for _, d in scores} == {target}
        assert len(scores) == len(zoo.model_ids())

    def test_record_false_leaves_catalog_untouched(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        before = len(zoo.catalog.transferability)
        score_zoo(zoo, metric="transrate", targets=[target], record=False)
        assert len(zoo.catalog.transferability) == before

    def test_estimators_rank_differently_but_finitely(self, tiny_image_zoo):
        """All estimators produce finite scores for every model."""
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        for metric in ("logme", "leep", "nce", "parc", "transrate", "hscore"):
            values = [score_model_on_dataset(zoo, m, target, metric)
                      for m in zoo.model_ids()]
            assert all(np.isfinite(v) for v in values), metric

    def test_train_vs_test_split_scores_correlate(self, tiny_image_zoo):
        """LogME on train vs test features should broadly agree."""
        from repro.utils import spearman_correlation

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        train_scores, test_scores = [], []
        for m in zoo.model_ids():
            train_scores.append(
                score_model_on_dataset(zoo, m, target, "logme", split="train"))
            test_scores.append(
                score_model_on_dataset(zoo, m, target, "logme", split="test"))
        rho = spearman_correlation(train_scores, test_scores)
        assert rho > 0.0
