"""Tests for dataset representations and similarity (probe package)."""

import numpy as np
import pytest

from repro.probe import (
    choose_probe_model,
    compute_dataset_embeddings,
    correlation_distance,
    domain_similarity_embedding,
    record_dataset_similarities,
    similarity_from_embeddings,
    task2vec_embedding,
)


class TestProbeSelection:
    def test_probe_is_best_pretrained(self, tiny_image_zoo):
        probe = choose_probe_model(tiny_image_zoo)
        best = max(tiny_image_zoo.models.values(),
                   key=lambda m: (m.pretrain_accuracy, m.model_id))
        assert probe == best.model_id

    def test_probe_deterministic(self, tiny_image_zoo):
        assert choose_probe_model(tiny_image_zoo) == \
            choose_probe_model(tiny_image_zoo)


class TestDomainSimilarity:
    def test_embedding_shape(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        probe = choose_probe_model(zoo)
        emb = domain_similarity_embedding(zoo, zoo.dataset_names()[0], probe)
        assert emb.shape == (zoo.model(probe).spec.embedding_dim,)

    def test_embedding_normalised(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        emb = domain_similarity_embedding(zoo, zoo.dataset_names()[0])
        assert np.linalg.norm(emb) == pytest.approx(1.0)

    def test_embeddings_differ_across_datasets(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        names = zoo.dataset_names()[:2]
        e0 = domain_similarity_embedding(zoo, names[0])
        e1 = domain_similarity_embedding(zoo, names[1])
        assert not np.allclose(e0, e1)

    def test_compute_all(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        embeddings = compute_dataset_embeddings(zoo)
        assert set(embeddings) == set(zoo.dataset_names())

    def test_unknown_method_rejected(self, tiny_image_zoo):
        with pytest.raises(ValueError, match="unknown representation"):
            compute_dataset_embeddings(tiny_image_zoo, method="pca")


class TestTask2Vec:
    def test_embedding_fixed_size(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        probe = choose_probe_model(zoo)
        dim = zoo.model(probe).spec.embedding_dim
        for name in zoo.dataset_names()[:2]:
            emb = task2vec_embedding(zoo, name, probe)
            assert emb.shape == (dim,)

    def test_embedding_nonnegative(self, tiny_image_zoo):
        """Diagonal Fisher information is a sum of squares."""
        zoo = tiny_image_zoo
        emb = task2vec_embedding(zoo, zoo.dataset_names()[0])
        assert (emb >= 0).all()

    def test_deterministic(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        name = zoo.dataset_names()[0]
        assert np.allclose(task2vec_embedding(zoo, name),
                           task2vec_embedding(zoo, name))


class TestSimilarity:
    def test_correlation_distance_range(self):
        rng = np.random.default_rng(0)
        u, v = rng.normal(size=16), rng.normal(size=16)
        assert 0.0 <= correlation_distance(u, v) <= 2.0
        assert correlation_distance(u, u) == pytest.approx(0.0)

    def test_similarity_matrix_properties(self):
        rng = np.random.default_rng(1)
        embeddings = {f"d{i}": rng.normal(size=12) for i in range(4)}
        names, sim = similarity_from_embeddings(embeddings)
        assert names == sorted(embeddings)
        assert np.allclose(sim, sim.T)
        assert np.allclose(np.diag(sim), 1.0)
        assert (sim >= 0).all() and (sim <= 1).all()

    def test_correlated_embeddings_more_similar(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=20)
        embeddings = {
            "a": base,
            "b": base + 0.1 * rng.normal(size=20),
            "c": rng.normal(size=20),
        }
        names, sim = similarity_from_embeddings(embeddings)
        idx = {n: i for i, n in enumerate(names)}
        assert sim[idx["a"], idx["b"]] > sim[idx["a"], idx["c"]]

    def test_record_similarities(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        embeddings = compute_dataset_embeddings(zoo)
        count = record_dataset_similarities(zoo, embeddings)
        n = len(zoo.dataset_names())
        assert count == n * (n - 1) // 2
        a, b = zoo.dataset_names()[:2]
        assert zoo.catalog.get_similarity(a, b) is not None

    def test_same_domain_pairs_more_similar_on_average(self, tiny_image_zoo):
        """Structural property: within-domain similarity > cross-domain."""
        zoo = tiny_image_zoo
        embeddings = compute_dataset_embeddings(zoo)
        names, sim = similarity_from_embeddings(embeddings)
        domain = {n: zoo.universe.domain_of(n) for n in names}
        same, cross = [], []
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                value = sim[i, j]
                (same if domain[names[i]] == domain[names[j]] else cross).append(value)
        if same and cross:  # tiny zoo may lack same-domain pairs
            assert np.mean(same) > np.mean(cross) - 0.05
