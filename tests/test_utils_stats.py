"""Tests for repro.utils.stats — Pearson (Eq. 1), Spearman, top-k."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils import (
    pearson_correlation,
    rank_of,
    spearman_correlation,
    summary_stats,
    top_k_indices,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestPearson:
    def test_perfect_positive(self):
        t = [0.1, 0.2, 0.3, 0.4]
        assert pearson_correlation(t, t) == pytest.approx(1.0)

    def test_perfect_negative(self):
        t = np.array([0.1, 0.2, 0.3, 0.4])
        assert pearson_correlation(t, -t) == pytest.approx(-1.0)

    def test_linear_invariance(self):
        t = np.array([1.0, 3.0, 2.0, 5.0])
        s = 2.5 * t + 7.0
        assert pearson_correlation(t, s) == pytest.approx(1.0)

    def test_constant_vector_returns_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [0.3, 0.5, 0.9]) == 0.0
        assert pearson_correlation([0.3, 0.5, 0.9], [2.0, 2.0, 2.0]) == 0.0

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=50)
        s = 0.6 * t + rng.normal(size=50)
        expected = np.corrcoef(t, s)[0, 1]
        assert pearson_correlation(t, s) == pytest.approx(expected, abs=1e-12)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="two points"):
            pearson_correlation([1.0], [2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))

    @given(hnp.arrays(np.float64, st.integers(3, 40), elements=finite_floats),
           hnp.arrays(np.float64, st.integers(3, 40), elements=finite_floats))
    def test_bounded_and_symmetric(self, a, b):
        if len(a) != len(b):
            n = min(len(a), len(b))
            a, b = a[:n], b[:n]
        r = pearson_correlation(a, b)
        assert -1.0 <= r <= 1.0
        assert r == pytest.approx(pearson_correlation(b, a), abs=1e-9)

    @given(hnp.arrays(np.float64, st.integers(3, 30), elements=finite_floats),
           st.floats(min_value=0.01, max_value=100),
           st.floats(min_value=-50, max_value=50))
    def test_invariant_under_positive_affine(self, a, scale, shift):
        from hypothesis import assume

        # Skip near-degenerate inputs whose spread underflows to a
        # constant vector after the affine map (float rounding).
        assume(a.max() - a.min() > 1e-6 * (1.0 + np.abs(a).max()))
        b = a * 0.5 + 1.0  # arbitrary second vector correlated with a
        r1 = pearson_correlation(a, b)
        r2 = pearson_correlation(a, b * scale + shift)
        assert r1 == pytest.approx(r2, abs=1e-7)


class TestRanks:
    def test_simple_ranks(self):
        assert rank_of([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_tie_handling(self):
        assert rank_of([10.0, 20.0, 20.0]).tolist() == [1.0, 2.5, 2.5]

    def test_all_tied(self):
        assert rank_of([5.0, 5.0, 5.0, 5.0]).tolist() == [2.5] * 4

    def test_spearman_monotone_transform(self):
        rng = np.random.default_rng(1)
        t = rng.normal(size=30)
        assert spearman_correlation(t, np.exp(t)) == pytest.approx(1.0)

    def test_spearman_robust_to_outlier(self):
        t = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        s = np.array([1.0, 2.0, 3.0, 4.0, 1000.0])
        assert spearman_correlation(t, s) == pytest.approx(1.0)


class TestTopK:
    def test_selects_best_first(self):
        scores = [0.1, 0.9, 0.5, 0.7]
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_k_larger_than_n(self):
        assert len(top_k_indices([0.1, 0.2], 10)) == 2

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            top_k_indices([0.1], 0)

    def test_stable_on_ties(self):
        assert top_k_indices([0.5, 0.5, 0.5], 2).tolist() == [0, 1]

    @given(hnp.arrays(np.float64, st.integers(1, 30), elements=finite_floats),
           st.integers(1, 10))
    def test_returns_maximal_elements(self, scores, k):
        idx = top_k_indices(scores, k)
        selected_min = scores[idx].min()
        unselected = np.delete(scores, idx)
        if unselected.size:
            assert selected_min >= unselected.max()


class TestSummaryStats:
    def test_basic(self):
        s = summary_stats([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_stats([])
