"""Property/invariant tests for SelectionService internals.

- the in-memory LRU must evict in exact least-recently-used order under
  arbitrary access sequences (checked against a reference model);
- ``ServiceStats.since`` must stay correct when the latency deque wraps
  at the ``LATENCY_WINDOW`` boundary;
- cache keys must isolate configs: two services with different config
  fingerprints sharing one registry never serve each other's artifacts.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import ArtifactRegistry, SelectionService, ServiceStats
from repro.serving.fingerprint import config_fingerprint

from serving_stubs import StubZoo, stub_service

_TARGETS = ("t0", "t1", "t2", "t3", "t4", "t5")


# ---------------------------------------------------------------------- #
# LRU eviction order
# ---------------------------------------------------------------------- #
class TestLRUInvariants:
    @settings(max_examples=60, deadline=None)
    @given(accesses=st.lists(st.sampled_from(_TARGETS), max_size=50),
           cache_size=st.integers(min_value=1, max_value=4))
    def test_eviction_order_matches_reference_lru(self, accesses, cache_size):
        service = SelectionService(StubZoo(_TARGETS), TransferGraphConfig(),
                                   cache_size=cache_size)
        service.strategy.fit = lambda zoo, target: object()

        reference: OrderedDict[str, None] = OrderedDict()
        hits = misses = evictions = 0
        for target in accesses:
            if target in reference:
                reference.move_to_end(target)
                hits += 1
            else:
                reference[target] = None
                misses += 1
                while len(reference) > cache_size:
                    reference.popitem(last=False)
                    evictions += 1
            service._fitted(target)

            assert service.cached_targets() == list(reference)

        stats = service.stats()
        assert stats["cache_hits"] == hits
        assert stats["cache_misses"] == misses
        assert stats["evictions"] == evictions
        assert stats["fits"] == misses  # every miss was a cold fit
        assert len(service.cached_targets()) <= cache_size

    def test_cached_pipeline_identity_preserved(self):
        """A hit returns the very object inserted at fit time."""
        service = stub_service(_TARGETS)
        first = service._fitted("t0")
        again = service._fitted("t0")
        assert again is first


# ---------------------------------------------------------------------- #
# ServiceStats.since at the latency-window boundary
# ---------------------------------------------------------------------- #
def _stats_with_window(window: int) -> ServiceStats:
    stats = ServiceStats()
    stats.latencies_ms = deque(maxlen=window)
    return stats


class TestStatsWindowBoundary:
    @settings(max_examples=80, deadline=None)
    @given(window=st.integers(min_value=1, max_value=16),
           n_before=st.integers(min_value=0, max_value=40),
           n_after=st.integers(min_value=0, max_value=40))
    def test_since_slices_exactly_the_new_latencies(self, window, n_before,
                                                    n_after):
        stats = _stats_with_window(window)
        values = [float(i) for i in range(n_before + n_after)]
        for v in values[:n_before]:
            stats.queries += 1
            stats.latencies_ms.append(v)
        earlier = stats.copy()
        for v in values[n_before:]:
            stats.queries += 1
            stats.latencies_ms.append(v)

        delta = stats.since(earlier)
        assert delta.queries == n_after
        expected = values[-min(n_after, window):] if n_after else []
        assert list(delta.latencies_ms) == expected

    def test_window_overflow_keeps_most_recent(self):
        """More new queries than the window: since() returns the newest
        ``window`` latencies, never stale pre-snapshot entries."""
        window = 8
        stats = _stats_with_window(window)
        earlier = stats.copy()
        for i in range(3 * window):
            stats.queries += 1
            stats.latencies_ms.append(float(i))
        delta = stats.since(earlier)
        assert delta.queries == 3 * window
        assert list(delta.latencies_ms) == [float(i) for i in
                                            range(2 * window, 3 * window)]

    def test_real_window_constant_bounds_the_deque(self):
        from repro.serving.service import LATENCY_WINDOW

        stats = ServiceStats()
        assert stats.latencies_ms.maxlen == LATENCY_WINDOW


# ---------------------------------------------------------------------- #
# cache-key isolation across config fingerprints
# ---------------------------------------------------------------------- #
class TestConfigIsolation:
    def test_two_configs_never_share_artifacts(self, tiny_image_zoo,
                                               tmp_path):
        config_a = TransferGraphConfig(predictor="lr", embedding_dim=16,
                                       features=FeatureSet.everything())
        config_b = TransferGraphConfig(predictor="lr", embedding_dim=16,
                                       features=FeatureSet.everything(),
                                       seed=99)
        assert config_fingerprint(config_a) != config_fingerprint(config_b)

        registry = ArtifactRegistry(tmp_path)
        target = tiny_image_zoo.target_names()[0]

        service_a = SelectionService(tiny_image_zoo, config_a,
                                     registry=registry)
        service_a.rank(target)
        assert registry.targets(config_a) == [target]
        assert registry.targets(config_b) == []

        # B must fit from scratch: A's artifact lives in another namespace.
        service_b = SelectionService(tiny_image_zoo, config_b,
                                     registry=registry)
        service_b.rank(target)
        stats_b = service_b.stats()
        assert stats_b["fits"] == 1
        assert stats_b["registry_hits"] == 0

        # A's namespace still revives warm — B's fit didn't clobber it.
        service_a2 = SelectionService(tiny_image_zoo, config_a,
                                      registry=registry)
        service_a2.rank(target)
        assert service_a2.stats()["registry_hits"] == 1
        assert service_a2.stats()["fits"] == 0

    def test_in_memory_keys_carry_the_fingerprint(self):
        service = stub_service(_TARGETS)
        service._fitted("t0")
        (key,) = service._cache
        assert key == ("t0", service.config_fp)
