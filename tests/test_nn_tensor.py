"""Tests for the autograd engine: exact gradients vs numeric differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f(x)
        flat[i] = original - eps
        down = f(x)
        flat[i] = original
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_grad(op, x: np.ndarray, atol: float = 1e-5):
    """Compare autograd gradient of sum(op(x)) with numeric gradient."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numeric_grad(lambda v: op(Tensor(v)).sum().item(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.x = self.rng.normal(size=(4, 5))

    def test_add(self):
        check_grad(lambda t: t + 3.0, self.x)

    def test_mul(self):
        check_grad(lambda t: t * t, self.x)

    def test_div(self):
        check_grad(lambda t: 1.0 / (t * t + 1.0), self.x)

    def test_sub_neg(self):
        check_grad(lambda t: 5.0 - t, self.x)

    def test_pow(self):
        check_grad(lambda t: (t * t + 1.0) ** 1.5, self.x)

    def test_exp(self):
        check_grad(lambda t: t.exp(), self.x)

    def test_log(self):
        check_grad(lambda t: (t * t + 1.0).log(), self.x)

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), self.x)

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), self.x)

    def test_relu(self):
        x = self.x + 0.05  # keep away from the kink
        check_grad(lambda t: t.relu(), x)

    def test_leaky_relu(self):
        x = self.x + 0.05
        check_grad(lambda t: t.leaky_relu(0.1), x)

    def test_gelu(self):
        check_grad(lambda t: t.gelu(), self.x)

    def test_sqrt(self):
        check_grad(lambda t: (t * t + 1.0).sqrt(), self.x)


class TestReductionsAndShapes:
    def setup_method(self):
        self.rng = np.random.default_rng(1)
        self.x = self.rng.normal(size=(3, 4))

    def test_sum_all(self):
        check_grad(lambda t: t.sum() * 2.0, self.x)

    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=0) ** 2.0), self.x)

    def test_mean(self):
        check_grad(lambda t: t.mean(axis=1) * t.mean(axis=1), self.x)

    def test_max(self):
        # keep values distinct so the max subgradient is unique
        x = np.arange(12.0).reshape(3, 4) + self.rng.normal(scale=0.01, size=(3, 4))
        check_grad(lambda t: t.max(axis=1), x)

    def test_reshape(self):
        check_grad(lambda t: t.reshape(12) * t.reshape(12), self.x)

    def test_transpose(self):
        check_grad(lambda t: t.T @ Tensor(np.ones((3, 2))), self.x)

    def test_getitem(self):
        check_grad(lambda t: t[1:3] * 2.0, self.x)

    def test_fancy_index(self):
        idx = (np.array([0, 2]), np.array([1, 3]))
        check_grad(lambda t: t[idx] ** 2.0, self.x)

    def test_concat(self):
        a = Tensor(self.x.copy(), requires_grad=True)
        b = Tensor(self.x.copy() * 2, requires_grad=True)
        out = Tensor.concat([a, b], axis=0).sum()
        out.backward()
        assert np.allclose(a.grad, np.ones_like(self.x))
        assert np.allclose(b.grad, np.ones_like(self.x))


class TestMatmulGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(2)

    def test_2d_2d(self):
        a = self.rng.normal(size=(3, 4))
        b = self.rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T, atol=1e-9)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)), atol=1e-9)

    def test_1d_2d(self):
        a = self.rng.normal(size=4)
        b = self.rng.normal(size=(4, 3))
        check_grad(lambda t: t @ Tensor(b), a)

    def test_2d_1d(self):
        a = self.rng.normal(size=(3, 4))
        v = self.rng.normal(size=4)
        check_grad(lambda t: t @ Tensor(v), a)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 2, 2))) @ Tensor(np.ones((2, 2)))


class TestSoftmax:
    def test_log_softmax_grad(self):
        x = np.random.default_rng(3).normal(size=(5, 4))
        check_grad(lambda t: t.log_softmax(axis=-1), x)

    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(4).normal(size=(6, 3))
        probs = Tensor(x).softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)

    def test_log_softmax_stable_for_large_logits(self):
        x = np.array([[1000.0, 1001.0, 999.0]])
        out = Tensor(x).log_softmax().numpy()
        assert np.isfinite(out).all()


class TestBroadcasting:
    def test_bias_broadcast_grad(self):
        x = np.random.default_rng(5).normal(size=(6, 3))
        bias = np.random.default_rng(6).normal(size=3)
        tb = Tensor(bias, requires_grad=True)
        ((Tensor(x) + tb) ** 2.0).sum().backward()
        expected = (2 * (x + bias)).sum(axis=0)
        np.testing.assert_allclose(tb.grad, expected, atol=1e-9)

    def test_scalar_broadcast_grad(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((3, 3)))
        (x * s).sum().backward()
        assert s.grad == pytest.approx(9.0)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.sum().backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).sum().backward()  # d/dx 6x^2 = 12x
        assert x.grad[0] == pytest.approx(18.0)

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_chain_gradcheck_random_shapes(rows, cols):
    """Property: a composite expression gradchecks for arbitrary 2-D shapes."""
    rng = np.random.default_rng(rows * 31 + cols)
    x = rng.normal(size=(rows, cols))
    check_grad(lambda t: (t.tanh() * 2.0 + t.sigmoid()).mean(axis=0), x)
