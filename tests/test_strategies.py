"""The unified SelectionStrategy API: registry, parity, serving."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    ArtifactRegistry,
    RankRequest,
    ScoreBatchRequest,
    SelectionGateway,
    SelectionService,
)
from repro.strategies import (
    FittedScoreTable,
    RandomStrategy,
    TransferabilityStrategy,
    TransferGraphStrategy,
    UnknownStrategyError,
    available_specs,
    get_strategy,
    resolve_strategy,
    spec_for_config,
)


def run(coro):
    return asyncio.run(coro)


#: cheap TG override so fits stay fast on the tiny zoo
TG_OVERRIDES = {"embedding_dim": 16}

#: one spec per strategy family — the parity roster
PARITY_SPECS = ("tg:lr,n2v,all", "lr:basic", "lr:all+logme", "logme",
                "leep", "random:7")


class TestRegistryLookup:
    def test_specs_resolve_to_canonical_strategies(self):
        assert get_strategy("tg").spec == "tg:lr,n2v,all"
        assert get_strategy("TG:LR,N2V,ALL").spec == "tg:lr,n2v,all"
        assert get_strategy("tg:xgb").spec == "tg:xgb,n2v,all"
        assert get_strategy("tg:rf,node2vec+,graph").spec == "tg:rf,n2v+,graph"
        assert get_strategy("lr").spec == "lr:basic"
        assert get_strategy("lr:all+logme").name == "LR{all,LogME}"
        assert get_strategy("logme").name == "LogME"
        assert get_strategy("random").spec == "random"
        assert get_strategy("random:3").seed == 3

    def test_unknown_specs_raise_typed_error(self):
        for bad in ("nope", "tg:nope", "tg:lr,nope", "tg:lr,n2v,nope",
                    "lr:huge", "random:xyz", "logme:extra", "", "   "):
            with pytest.raises(UnknownStrategyError):
                get_strategy(bad)

    def test_tg_overrides_change_fingerprint_not_spec(self):
        plain = get_strategy("tg:lr,n2v,all")
        small = get_strategy("tg:lr,n2v,all", embedding_dim=16)
        assert plain.spec == small.spec
        assert plain.fingerprint() != small.fingerprint()
        assert small.config.embedding_dim == 16

    def test_overrides_ignored_by_non_tg_families(self):
        assert get_strategy("logme", embedding_dim=16).metric == "logme"

    def test_available_specs_all_resolve(self):
        specs = available_specs()
        assert len(specs) == len(set(specs))
        for spec in specs:
            assert get_strategy(spec).spec == spec

    def test_resolve_strategy_accepts_legacy_config(self):
        config = TransferGraphConfig(predictor="rf")
        strategy = resolve_strategy(config)
        assert isinstance(strategy, TransferGraphStrategy)
        assert strategy.config is config
        assert resolve_strategy(strategy) is strategy
        with pytest.raises(TypeError):
            resolve_strategy(42)

    def test_spec_for_config_maps_lr_baselines(self):
        assert spec_for_config(TransferGraphConfig(
            predictor="lr", features=FeatureSet.basic())) == "lr:basic"
        assert spec_for_config(TransferGraphConfig(
            predictor="lr", features=FeatureSet.all_logme())) == "lr:all+logme"
        assert spec_for_config(TransferGraphConfig()) == "tg:lr,n2v,all"
        # non-lr predictors without graph features are not LR baselines
        assert spec_for_config(TransferGraphConfig(
            predictor="xgb",
            features=FeatureSet.basic())) == "tg:xgb,n2v,all"

    def test_fingerprints_are_pairwise_distinct(self):
        strategies = [get_strategy(spec, **TG_OVERRIDES)
                      for spec in PARITY_SPECS]
        fingerprints = [s.fingerprint() for s in strategies]
        assert len(set(fingerprints)) == len(fingerprints)


class TestPackUnpackParity:
    """Satellite acceptance: every strategy family round-trips pack →
    unpack through the registry with identical rank() output."""

    @pytest.mark.parametrize("spec", PARITY_SPECS)
    def test_registry_roundtrip_rank_identical(self, spec, tiny_image_zoo,
                                               tmp_path):
        zoo = tiny_image_zoo
        strategy = get_strategy(spec, **TG_OVERRIDES)
        target = zoo.target_names()[0]
        fitted = strategy.fit(zoo, target)

        registry = ArtifactRegistry(tmp_path)
        registry.save(fitted, strategy, zoo)
        assert registry.contains(target, strategy)
        revived = registry.load(target, strategy, zoo)

        ids = zoo.model_ids()
        assert np.array_equal(fitted.predict(ids), revived.predict(ids))
        assert fitted.rank(ids) == revived.rank(ids)

    def test_score_table_artifact_rejects_other_strategy(self,
                                                         tiny_image_zoo,
                                                         tmp_path):
        """logme's artifact must never revive as leep's."""
        from repro.serving import ArtifactNotFoundError

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        logme = get_strategy("logme")
        registry = ArtifactRegistry(tmp_path)
        registry.save(logme.fit(zoo, target), logme, zoo)
        with pytest.raises(ArtifactNotFoundError):
            registry.load(target, get_strategy("leep"), zoo)

    def test_score_table_catalog_staleness_detected(self, tiny_image_zoo,
                                                    tmp_path):
        from repro.serving import StaleArtifactError

        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        strategy = get_strategy("random")
        registry = ArtifactRegistry(tmp_path)
        registry.save(strategy.fit(zoo, target), strategy, zoo)

        model_id = zoo.model_ids()[0]
        row = zoo.catalog.history.get_or_none(model_id, target, "finetune")
        zoo.catalog.record_history(model_id, target, row["accuracy"] + 0.01,
                                   epochs=row["epochs"])
        try:
            with pytest.raises(StaleArtifactError):
                registry.load(target, strategy, zoo)
        finally:
            zoo.catalog.record_history(model_id, target, row["accuracy"],
                                       epochs=row["epochs"])
        registry.load(target, strategy, zoo)


class TestNoHistoryFastPath:
    def test_transferability_fit_is_a_score_table(self, tiny_image_zoo):
        strategy = TransferabilityStrategy("logme")
        assert strategy.requires_history is False
        target = tiny_image_zoo.target_names()[0]
        fitted = strategy.fit(tiny_image_zoo, target)
        assert isinstance(fitted, FittedScoreTable)
        assert set(fitted.scores) == set(tiny_image_zoo.model_ids())

    def test_transferability_matches_catalog_scores(self, tiny_image_zoo):
        """The fast path serves exactly the catalog's estimator column."""
        zoo = tiny_image_zoo
        target = zoo.target_names()[1]
        fitted = TransferabilityStrategy("logme").fit(zoo, target)
        for model_id in zoo.model_ids():
            cached = zoo.catalog.get_transferability(model_id, target,
                                                     metric="logme")
            assert cached is not None
            assert fitted.scores[model_id] == pytest.approx(cached)

    def test_random_is_deterministic_per_seed_target(self, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        a = RandomStrategy(seed=3).fit(tiny_image_zoo, target)
        b = RandomStrategy(seed=3).fit(tiny_image_zoo, target)
        c = RandomStrategy(seed=4).fit(tiny_image_zoo, target)
        assert a.scores == b.scores
        assert a.scores != c.scores

    def test_rank_sorts_best_first_with_id_tiebreak(self):
        fitted = FittedScoreTable(target="t", scores={"b": 1.0, "a": 1.0,
                                                      "c": 2.0})
        assert fitted.rank(["a", "b", "c"]) == [("c", 2.0), ("a", 1.0),
                                                ("b", 1.0)]


class TestServedStrategies:
    """Acceptance: three strategy families through one gateway, and the
    wire form stays byte-identical to the in-process one per strategy."""

    @pytest.fixture()
    def multi_gateway(self, tiny_image_zoo, tmp_path):
        default = TransferGraphStrategy(TransferGraphConfig(
            predictor="lr", embedding_dim=16,
            features=FeatureSet.everything()))
        gateway = SelectionGateway(registry_root=tmp_path)
        gateway.add_namespace(
            "image", tiny_image_zoo, default,
            strategies=(get_strategy("lr:basic", **TG_OVERRIDES),
                        get_strategy("logme"),
                        get_strategy("random")))
        yield gateway
        gateway.close()

    def test_three_families_one_gateway(self, multi_gateway, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        rankings = {}
        for spec in (None, "lr:basic", "logme", "random"):
            response = run(multi_gateway.rank(RankRequest(
                target=target, namespace="image", strategy=spec)))
            assert response.strategy == spec
            rankings[spec] = response.ranking
        # different families genuinely answer differently
        orders = {tuple(m for m, _ in r) for r in rankings.values()}
        assert len(orders) >= 2

    def test_wire_equals_in_process_per_strategy(self, multi_gateway,
                                                 tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        for spec in (None, "lr:basic", "logme", "random"):
            request = RankRequest(target=target, namespace="image",
                                  strategy=spec, top_k=3)
            via_gateway = run(multi_gateway.handle(request)).to_json()
            in_process = multi_gateway.service(
                "image", spec).handle(request).to_json()
            assert via_gateway == in_process

    def test_omitted_strategy_is_byte_stable(self, multi_gateway,
                                             tiny_image_zoo):
        """No-strategy responses must not grow a strategy key."""
        target = tiny_image_zoo.target_names()[0]
        response = run(multi_gateway.rank(RankRequest(target=target,
                                                      namespace="image")))
        assert '"strategy"' not in response.to_json()

    def test_unknown_strategy_is_typed(self, multi_gateway, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        with pytest.raises(UnknownStrategyError) as exc_info:
            run(multi_gateway.rank(RankRequest(target=target,
                                               namespace="image",
                                               strategy="leep")))
        assert exc_info.value.spec == "leep"
        assert "logme" in str(exc_info.value)

    def test_score_batch_routes_by_strategy(self, multi_gateway,
                                            tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        pairs = tuple((m, target) for m in zoo.model_ids()[:2])
        response = run(multi_gateway.score_batch(ScoreBatchRequest(
            pairs=pairs, namespace="image", strategy="logme")))
        expected = [zoo.catalog.get_transferability(m, target, metric="logme")
                    for m, _ in pairs]
        assert list(response.scores) == pytest.approx(expected)

    def test_namespace_shards_by_strategy_fingerprint(self, multi_gateway,
                                                      tiny_image_zoo,
                                                      tmp_path):
        target = tiny_image_zoo.target_names()[0]
        run(multi_gateway.rank(RankRequest(target=target, namespace="image",
                                           strategy="logme")))
        logme = get_strategy("logme")
        shard = ArtifactRegistry(tmp_path / "image")
        assert shard.targets(logme) == [target]
        assert shard.targets(get_strategy("random")) == []

    def test_stats_pool_across_strategies(self, multi_gateway,
                                          tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        for spec in ("logme", "random", None):
            run(multi_gateway.rank(RankRequest(target=target,
                                               namespace="image",
                                               strategy=spec)))
        stats = multi_gateway.stats()
        assert stats.namespaces["image"]["queries"] == 3
        assert stats.fleet["queries"] == 3

    def test_duplicate_strategy_rejected(self, tiny_image_zoo):
        gateway = SelectionGateway()
        try:
            with pytest.raises(ValueError):
                gateway.add_namespace("image", tiny_image_zoo, "logme",
                                      strategies=("logme",))
        finally:
            gateway.close()


class TestSingleServiceStrategyCheck:
    def test_service_rejects_foreign_strategy_spec(self, tiny_image_zoo):
        service = SelectionService(tiny_image_zoo, "logme")
        target = tiny_image_zoo.target_names()[0]
        with pytest.raises(UnknownStrategyError):
            service.handle(RankRequest(target=target, strategy="leep"))
        # its own spec (case-insensitive) passes
        response = service.handle(RankRequest(target=target,
                                              strategy="LogME", top_k=2))
        assert len(response.ranking) == 2

    def test_service_accepts_spec_strings(self, tiny_image_zoo):
        service = SelectionService(tiny_image_zoo, "random")
        assert service.strategy.spec == "random"
        assert service.config is None


class TestAliasSpecRouting:
    """Any spelling get_strategy accepts must route on the wire too."""

    def test_normalize_spec_resolves_aliases(self):
        from repro.strategies import normalize_spec

        assert normalize_spec("tg:lr,node2vec,all") == "tg:lr,n2v,all"
        assert normalize_spec("random:0") == "random"
        assert normalize_spec("LogME ") == "logme"
        # unparseable specs fall back to lowercase+strip
        assert normalize_spec("custom-thing") == "custom-thing"

    def test_gateway_routes_alias_spellings(self):
        from serving_stubs import StubZoo, install_stub_fit

        gateway = SelectionGateway()
        gateway.add_namespace("alpha", StubZoo(), "random",
                              strategies=("tg:lr,n2v,all",))
        install_stub_fit(gateway.service("alpha", "tg:lr,n2v,all"))
        try:
            for spelling in ("random:0", "RANDOM", "tg:lr,node2vec,all"):
                response = run(gateway.rank(RankRequest(
                    target="t0", namespace="alpha", strategy=spelling)))
                assert response.strategy == spelling  # echoed verbatim
            with pytest.raises(UnknownStrategyError):
                run(gateway.rank(RankRequest(target="t0", namespace="alpha",
                                             strategy="random:1")))
        finally:
            gateway.close()

    def test_service_check_accepts_alias_of_its_own_spec(self):
        from serving_stubs import StubZoo

        service = SelectionService(StubZoo(), "random")
        service.check_strategy("random:0")
        service.check_strategy(" Random ")
        with pytest.raises(UnknownStrategyError):
            service.check_strategy("random:2")

    def test_custom_non_lowercase_spec_matches_exactly(self):
        from serving_stubs import StubZoo

        class CustomStrategy(RandomStrategy):
            def __init__(self):
                super().__init__()
                self.spec = "MyRanker"
                self.name = "MyRanker"

        gateway = SelectionGateway()
        gateway.add_namespace("alpha", StubZoo(), CustomStrategy())
        try:
            response = run(gateway.rank(RankRequest(
                target="t0", namespace="alpha", strategy="MyRanker")))
            assert response.strategy == "MyRanker"
        finally:
            gateway.close()
        service = SelectionService(StubZoo(), CustomStrategy())
        service.check_strategy("MyRanker")
