"""Tests for the probe-head fitting used by Task2Vec (Eq. 6)."""

import numpy as np
from repro.nn import Tensor, no_grad
from repro.probe.task2vec import fit_probe_head


class TestFitProbeHead:
    def test_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 3, size=150)
        means = np.eye(3) * 4.0
        x = means[y][:, :3].repeat(2, axis=1) + rng.normal(size=(150, 6))
        head = fit_probe_head(x, y, num_classes=3, seed=0)
        with no_grad():
            pred = head(Tensor(x)).numpy().argmax(axis=1)
        assert (pred == y).mean() > 0.9

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(60, 4))
        y = rng.integers(0, 2, size=60)
        h1 = fit_probe_head(x, y, 2, seed=5)
        h2 = fit_probe_head(x, y, 2, seed=5)
        assert np.allclose(h1.weight.data, h2.weight.data)

    def test_output_width_matches_classes(self):
        rng = np.random.default_rng(2)
        head = fit_probe_head(rng.normal(size=(30, 5)),
                              rng.integers(0, 4, size=30), num_classes=4,
                              seed=0)
        assert head.weight.data.shape == (5, 4)
