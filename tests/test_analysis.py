"""The ``repro analyze`` suite: fixture trees, self-check, CLI contract.

Two kinds of coverage:

- **fixture tests** — each rule must fire on the planted violations in
  ``tests/analysis_fixtures/bad/`` and stay silent on the corrected
  twins in ``tests/analysis_fixtures/good/`` (which also exercises
  ``# analyze: ignore[...]`` suppression and ``*_locked`` exemptions);
- **self-check** — the suite must be clean over this repository itself,
  and breaking the real ``serving/protocol.py`` schema (removing or
  retyping a field relative to the committed snapshot) must fail the
  ``wire-schema`` rule — the property the CI ``analysis`` job gates on.
"""

from __future__ import annotations

import copy
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Finding,
    Project,
    SNAPSHOT_PATH,
    all_rules,
    extract_schema,
    format_findings,
    run_analysis,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "analysis_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

RULE_IDS = [cls.id for cls in all_rules()]


def _messages(findings, rule):
    return [f.message for f in findings if f.rule == rule]


# --------------------------------------------------------------------- #
# bad fixture: every rule fires on the planted lines
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bad_findings():
    return run_analysis(BAD)


def test_every_rule_fires_on_bad_fixture(bad_findings):
    assert {f.rule for f in bad_findings} == set(RULE_IDS)


def test_lock_discipline_flags_unguarded_read(bad_findings):
    [message] = _messages(bad_findings, "lock-discipline")
    assert "Counter._hits" in message
    assert "self._lock" in message
    [finding] = [f for f in bad_findings if f.rule == "lock-discipline"]
    assert finding.path == "src/repro/serving/counter.py"
    assert "with self._lock" in finding.hint


def test_async_blocking_flags_each_primitive(bad_findings):
    messages = _messages(bad_findings, "async-blocking")
    assert len(messages) == 6
    for needle in ("time.sleep", "open()", "future.result", "strategy.fit",
                   "sqlite3.connect", "conn.execute"):
        assert any(needle in m for m in messages), needle


def test_wire_schema_flags_every_break(bad_findings):
    messages = _messages(bad_findings, "wire-schema")
    assert len(messages) == 4
    assert any("RankResponse was removed" in m for m in messages)
    assert any("request_id was removed" in m for m in messages)
    assert any("top_k was retyped" in m for m in messages)
    assert any("trace is a new required field" in m for m in messages)


def test_layering_flags_upward_import_and_protocol_import(bad_findings):
    messages = _messages(bad_findings, "import-layering")
    assert len(messages) == 2
    assert any("upward dependency" in m for m in messages)
    assert any("stdlib-only" in m for m in messages)


def test_pickle_boundary_flags_lock_lambda_and_nested_submit(bad_findings):
    messages = _messages(bad_findings, "pickle-boundary")
    assert len(messages) == 3
    assert any("threading.Lock" in m for m in messages)
    assert any("lambda" in m for m in messages)
    assert any("nested function 'task'" in m for m in messages)


def test_rule_filter_scopes_the_run():
    findings = run_analysis(BAD, ["lock-discipline"])
    assert findings and all(f.rule == "lock-discipline" for f in findings)


# --------------------------------------------------------------------- #
# good fixture: corrected twins (and suppressions) are silent
# --------------------------------------------------------------------- #
def test_good_fixture_is_clean():
    assert run_analysis(GOOD) == []


def test_suppression_comment_is_load_bearing(tmp_path):
    """Stripping the ignore comment in good/counter.py revives the finding."""
    root = tmp_path / "repo"
    shutil.copytree(GOOD, root)
    counter = root / "src/repro/serving/counter.py"
    text = counter.read_text(encoding="utf-8")
    assert "# analyze: ignore[lock-discipline]" in text
    counter.write_text(
        text.replace("  # analyze: ignore[lock-discipline]", ""),
        encoding="utf-8",
    )
    findings = run_analysis(root, ["lock-discipline"])
    assert [f.line for f in findings] == [29]


# --------------------------------------------------------------------- #
# self-check: this repository holds its own invariants
# --------------------------------------------------------------------- #
def test_repo_tree_is_clean():
    assert run_analysis(REPO_ROOT) == []


def _schema_break_root(tmp_path, mutate):
    """A mini-repo with the *real* protocol.py and a doctored snapshot."""
    root = tmp_path / "repo"
    serving = root / "src/repro/serving"
    serving.mkdir(parents=True)
    real = REPO_ROOT / "src/repro/serving/protocol.py"
    (serving / "protocol.py").write_text(
        real.read_text(encoding="utf-8"), encoding="utf-8"
    )
    schema = copy.deepcopy(extract_schema(Project(REPO_ROOT)))
    mutate(schema)
    snapshot = root / SNAPSHOT_PATH
    snapshot.parent.mkdir(parents=True)
    snapshot.write_text(json.dumps(schema), encoding="utf-8")
    return root


def test_removing_a_live_protocol_field_fails(tmp_path):
    # A snapshot field the live module no longer has == a deleted field.
    def mutate(schema):
        fields = schema["messages"]["RankRequest"]["fields"]
        fields["legacy_hint"] = {"type": "str | None", "required": False}

    findings = run_analysis(
        _schema_break_root(tmp_path, mutate), ["wire-schema"]
    )
    assert [f.rule for f in findings] == ["wire-schema"]
    assert "RankRequest.legacy_hint was removed" in findings[0].message


def test_retyping_a_live_protocol_field_fails(tmp_path):
    def mutate(schema):
        schema["messages"]["RankRequest"]["fields"]["target"]["type"] = "bytes"

    findings = run_analysis(
        _schema_break_root(tmp_path, mutate), ["wire-schema"]
    )
    assert len(findings) == 1
    assert "RankRequest.target was retyped" in findings[0].message


def test_live_schema_matches_committed_snapshot():
    committed = json.loads(
        (REPO_ROOT / SNAPSHOT_PATH).read_text(encoding="utf-8")
    )
    assert extract_schema(Project(REPO_ROOT)) == committed


# --------------------------------------------------------------------- #
# runner machinery and the CLI face the CI job drives
# --------------------------------------------------------------------- #
def test_unknown_rule_is_an_analysis_error():
    with pytest.raises(AnalysisError, match="unknown rule"):
        run_analysis(BAD, ["no-such-rule"])


def test_findings_are_stably_ordered(bad_findings):
    keys = [f.sort_key() for f in bad_findings]
    assert keys == sorted(keys)


def test_format_findings_json_report(bad_findings):
    report = json.loads(format_findings(bad_findings, "json"))
    assert report["count"] == len(bad_findings)
    assert report["ok"] is False
    assert report["findings"][0]["rule"] == bad_findings[0].rule
    clean = json.loads(format_findings([], "json"))
    assert clean == {"count": 0, "findings": [], "ok": True}


def test_format_findings_human_includes_hint():
    finding = Finding(
        rule="demo", path="src/x.py", line=3, message="boom", hint="fix it"
    )
    text = format_findings([finding])
    assert "src/x.py:3: [demo] boom" in text
    assert "fix: fix it" in text


def test_cli_exit_codes(capsys):
    assert main(["analyze", "--root", str(GOOD)]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["analyze", "--root", str(BAD), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False and report["count"] > 0


def test_cli_update_schema_round_trips(tmp_path, capsys):
    root = tmp_path / "repo"
    shutil.copytree(GOOD, root)
    snapshot = root / SNAPSHOT_PATH
    snapshot.unlink()
    assert main(["analyze", "--root", str(root), "--rule", "wire-schema"]) == 1
    assert "no committed schema snapshot" in capsys.readouterr().out
    assert main(["analyze", "--root", str(root), "--update-schema"]) == 0
    capsys.readouterr()
    assert main(["analyze", "--root", str(root)]) == 0
    regenerated = json.loads(snapshot.read_text(encoding="utf-8"))
    committed = json.loads(
        (GOOD / SNAPSHOT_PATH).read_text(encoding="utf-8")
    )
    assert regenerated == committed
