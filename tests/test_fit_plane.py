"""Process fit plane: thread/process parity, crash semantics, warmup.

The parity tests are the tentpole contract: a fit executed in a worker
process — shipped back as a packed artifact, unpacked in the parent —
must serve byte-identical rankings and write byte-identical registry
artifacts to the in-process thread path, for every strategy family.

The failure tests use stub strategies (picklable, so they cross the
spawn boundary) whose fits kill their own worker or oversleep a
timeout, proving plane failures surface as typed errors that shed the
coalesced group while the router itself stays serviceable.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import (
    ArtifactRegistry,
    AsyncSelectionRouter,
    FitPlaneError,
    FitTimeoutError,
    FitWorkerCrashError,
    ProcessFitExecutor,
    RankRequest,
    SelectionService,
)
from repro.serving.fit_plane import zoo_ref_for
from repro.strategies import resolve_strategy

from serving_stubs import STUB_SCORES, StubStrategy, StubZoo, stub_service


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def cached_zoo(tiny_image_zoo, tmp_path_factory):
    """The tiny zoo, saved where spawn workers can re-hydrate it.

    Worker processes resolve the zoo cache through ``REPRO_CACHE_DIR``
    (inherited via the environment), so the fixture saves the shared
    session zoo into a temp cache and points the variable there for the
    module.  Without this every worker would *rebuild* the zoo —
    correct, but minutes instead of milliseconds.
    """
    from repro.zoo.cache import save_zoo

    cache_dir = tmp_path_factory.mktemp("fit_plane_zoo_cache")
    save_zoo(tiny_image_zoo, cache_dir)
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield tiny_image_zoo
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


# ---------------------------------------------------------------------- #
# crash/timeout doubles (module-level: spawn pickles them by reference)
# ---------------------------------------------------------------------- #
class KillWorkerStrategy(StubStrategy):
    """SIGKILLs its own worker for selected targets; fits normally else."""

    def __init__(self, crash_targets=("t0",)):
        super().__init__("kill", STUB_SCORES["agree"])
        self.crash_targets = set(crash_targets)

    def fit(self, zoo, target):
        if target in self.crash_targets:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().fit(zoo, target)


class SlowStrategy(StubStrategy):
    """Fits sleep long enough to overrun any sub-second fit timeout."""

    def __init__(self, sleep_s=5.0):
        super().__init__("slow", STUB_SCORES["agree"])
        self.sleep_s = sleep_s

    def fit(self, zoo, target):
        time.sleep(self.sleep_s)
        return super().fit(zoo, target)


class FailingStrategy(StubStrategy):
    """An ordinary fit exception (not a plane failure)."""

    def __init__(self):
        super().__init__("failing", STUB_SCORES["agree"])

    def fit(self, zoo, target):
        raise ValueError(f"no fit for {target!r}")


def process_router(service, **kwargs):
    kwargs.setdefault("fit_workers", 2)
    return AsyncSelectionRouter(service, fit_executor="process", **kwargs)


# ---------------------------------------------------------------------- #
# parity: one test per strategy family
# ---------------------------------------------------------------------- #
#: a graph-features TG variant, a dataset-similarity LR baseline, and a
#: transferability score table — the three artifact shapes that exist
PARITY_SPECS = [
    pytest.param(TransferGraphConfig(predictor="lr", embedding_dim=16,
                                     features=FeatureSet.everything()),
                 id="tg"),
    pytest.param("lr:all", id="lr-baseline"),
    pytest.param("logme", id="score-table"),
]


def _serve_all(zoo, strategy, executor, registry_root):
    """Rank every target through a fresh router; response JSON per target."""
    service = SelectionService(zoo, strategy,
                               registry=ArtifactRegistry(registry_root))
    router = AsyncSelectionRouter(service, fit_executor=executor)
    try:
        responses = {}
        for target in zoo.target_names():
            response = run(router.handle(RankRequest(target=target)))
            responses[target] = response.to_json()
        stats = router.stats()
    finally:
        router.close()
    assert stats["fits"] == len(zoo.target_names())
    return responses


class TestParity:
    @pytest.mark.parametrize("strategy", PARITY_SPECS)
    def test_rankings_and_artifacts_byte_identical(self, cached_zoo,
                                                   tmp_path, strategy):
        thread = _serve_all(cached_zoo, strategy, "thread",
                            tmp_path / "thread_reg")
        process = _serve_all(cached_zoo, strategy, "process",
                             tmp_path / "process_reg")
        # Wire parity: the serialized rank responses are byte-identical.
        assert thread == process

        # Registry parity: same artifact set, byte-identical meta.json,
        # identical array payloads.  (The npz container itself may embed
        # zip timestamps, so arrays compare by content, not file bytes.)
        resolved = resolve_strategy(strategy)
        for target in cached_zoo.target_names():
            t_dir = tmp_path / "thread_reg" / resolved.fingerprint() / target
            p_dir = (tmp_path / "process_reg" / resolved.fingerprint()
                     / target)
            t_meta = (t_dir / "meta.json").read_bytes()
            p_meta = (p_dir / "meta.json").read_bytes()
            assert t_meta == p_meta
            with np.load(t_dir / "arrays.npz") as t_npz, \
                    np.load(p_dir / "arrays.npz") as p_npz:
                assert sorted(t_npz.files) == sorted(p_npz.files)
                for key in t_npz.files:
                    assert t_npz[key].dtype == p_npz[key].dtype
                    assert t_npz[key].tobytes() == p_npz[key].tobytes()

    def test_registry_artifact_revives_into_thread_service(self, cached_zoo,
                                                           tmp_path):
        """A process-fitted artifact serves a later thread-mode process."""
        target = cached_zoo.target_names()[0]
        registry = ArtifactRegistry(tmp_path / "reg")
        service = SelectionService(cached_zoo, "logme", registry=registry)
        router = process_router(service)
        try:
            fresh = run(router.rank(target))
        finally:
            router.close()

        revived_service = SelectionService(cached_zoo, "logme",
                                           registry=registry)
        assert revived_service.rank(target) == fresh
        assert revived_service.stats()["registry_hits"] == 1
        assert revived_service.stats()["fits"] == 0


# ---------------------------------------------------------------------- #
# stats parity between executors
# ---------------------------------------------------------------------- #
class TestStatsParity:
    def _drive(self, executor):
        # fit_seconds: an instant fit can win the race against the
        # waiters' first step and serve them from cache instead of
        # coalescing them; a deterministic counter comparison needs the
        # fit to outlive the gather's scheduling.
        service = SelectionService(StubZoo(),
                                   StubStrategy("agree",
                                                STUB_SCORES["agree"],
                                                fit_seconds=0.3))
        router = AsyncSelectionRouter(service, fit_executor=executor)

        async def traffic():
            await asyncio.gather(*(router.rank("t0") for _ in range(5)))
            await router.rank("t1")
            before, router_before = router.stats_snapshot()
            await router.rank("t2")
            return (router.service.stats_snapshot().since(before),
                    router.router_stats().since(router_before))

        try:
            return run(traffic()), router.stats()
        finally:
            router.close()

    def test_counters_identical_across_executors(self):
        (t_delta, t_router_delta), t_stats = self._drive("thread")
        (p_delta, p_router_delta), p_stats = self._drive("process")
        for field in ("queries", "cache_hits", "cache_misses", "fits"):
            assert getattr(t_delta, field) == getattr(p_delta, field)
        for field in ("requests", "coalesced", "cold_fits", "rejections"):
            assert getattr(t_router_delta, field) == \
                getattr(p_router_delta, field)
        for key in ("fits", "cold_fits", "coalesced", "queries",
                    "failed_waits"):
            assert t_stats[key] == p_stats[key], key
        assert p_stats["coalesced"] == 4
        assert p_stats["fits"] == 3


# ---------------------------------------------------------------------- #
# plane failures
# ---------------------------------------------------------------------- #
class TestWorkerCrash:
    def test_crash_sheds_group_and_router_recovers(self):
        service = SelectionService(StubZoo(), KillWorkerStrategy(("t0",)))
        router = process_router(service)

        async def crash_then_recover():
            first = router.rank("t0")
            second = router.rank("t0")
            results = await asyncio.gather(first, second,
                                           return_exceptions=True)
            # Whole coalesced group fails typed; queue slot released.
            assert all(isinstance(r, FitWorkerCrashError) for r in results)
            assert router.pending_fits == 0
            # The pool was discarded and rebuilds: the router stays
            # serviceable for targets whose fits don't crash.
            ranking = await router.rank("t1")
            assert ranking[0][0] == "m0"

        try:
            run(crash_then_recover())
            stats = router.stats()
        finally:
            router.close()
        assert stats["fits"] == 1          # only the surviving target
        assert stats["failed_waits"] == 1  # the coalesced waiter
        assert stats["cold_fits"] == 2     # t0's originator + t1

    def test_timeout_is_typed_and_bounded(self):
        service = SelectionService(StubZoo(), SlowStrategy(sleep_s=5.0))
        router = process_router(service, fit_timeout_s=0.5)
        try:
            router.prestart_fit_plane()  # exclude spawn from the bound
            started = time.perf_counter()
            with pytest.raises(FitTimeoutError):
                run(router.rank("t0"))
            assert time.perf_counter() - started < 4.0
            assert router.pending_fits == 0
        finally:
            router.close()

    def test_ordinary_fit_exception_keeps_its_type(self):
        service = SelectionService(StubZoo(), FailingStrategy())
        router = process_router(service)
        try:
            with pytest.raises(ValueError, match="no fit for 't0'"):
                run(router.rank("t0"))
            assert router.pending_fits == 0
        finally:
            router.close()

    def test_unpicklable_strategy_is_a_typed_submit_error(self):
        # install_stub_fit patches fit with a closure — exactly the
        # shape that cannot cross the process boundary.
        service = stub_service()
        router = process_router(service)
        try:
            with pytest.raises(FitPlaneError, match="not.*picklable"):
                run(router.rank("t0"))
        finally:
            router.close()


# ---------------------------------------------------------------------- #
# pool warmup / lifecycle
# ---------------------------------------------------------------------- #
class TestPrestart:
    def test_thread_mode_prestart_is_a_noop(self):
        router = AsyncSelectionRouter(stub_service(), fit_executor="thread")
        try:
            assert router.prestart_fit_plane() == 0
        finally:
            router.close()

    def test_process_prestart_spawns_all_workers(self):
        service = SelectionService(StubZoo(),
                                   StubStrategy("agree",
                                                STUB_SCORES["agree"]))
        router = process_router(service, fit_workers=2)
        try:
            assert router.prestart_fit_plane() == 2
            assert run(router.rank("t0"))[0][0] == "m0"
        finally:
            router.close()

    def test_executor_rebuilds_after_close_refuses(self):
        executor = ProcessFitExecutor(workers=1)
        executor.close()
        with pytest.raises(FitPlaneError, match="closed"):
            executor.submit_fit(StubStrategy("agree", STUB_SCORES["agree"]),
                                StubZoo(), "t0")

    def test_env_default_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIT_EXECUTOR", "process")
        router = AsyncSelectionRouter(stub_service())
        try:
            assert router.fit_executor == "process"
        finally:
            router.close()
        monkeypatch.setenv("REPRO_FIT_EXECUTOR", "bogus")
        with pytest.raises(ValueError, match="fit_executor"):
            AsyncSelectionRouter(stub_service())


class TestEnvDefaultIntegration:
    def test_router_serves_under_ambient_executor(self, cached_zoo,
                                                  tmp_path):
        """A router built with no explicit executor follows
        ``REPRO_FIT_EXECUTOR`` — CI runs this file once with the
        variable set to ``process``, driving a real-zoo fit through
        whichever plane the environment selects."""
        service = SelectionService(cached_zoo, "logme",
                                   registry=ArtifactRegistry(tmp_path))
        router = AsyncSelectionRouter(service)
        try:
            assert router.fit_executor == os.environ.get(
                "REPRO_FIT_EXECUTOR", "thread")
            router.prestart_fit_plane()
            target = cached_zoo.target_names()[0]
            ranking = run(router.rank(target))
            stats = router.stats()
        finally:
            router.close()
        assert stats["fits"] == 1
        serial = SelectionService(cached_zoo, "logme")
        assert ranking == serial.rank(target)


class TestZooRefs:
    def test_config_zoos_ship_by_reference(self, tiny_image_zoo):
        ref = zoo_ref_for(tiny_image_zoo)
        assert ref.key  # the zoo fingerprint keys the worker-side cache
        assert not hasattr(ref, "payload")

    def test_stub_zoos_ship_whole(self):
        ref = zoo_ref_for(StubZoo())
        assert ref.key.startswith("pickled-")

    def test_unpicklable_zoo_is_typed(self):
        class Unpicklable(StubZoo):
            def __init__(self):
                super().__init__()
                self.lock = __import__("threading").Lock()

        with pytest.raises(FitPlaneError, match="cannot be pickled"):
            zoo_ref_for(Unpicklable())
