"""Tests for repro.utils.rng — deterministic seed derivation."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", "b") == derive_seed(0, "a", "b")

    def test_depends_on_root(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_depends_on_path(self):
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a", "b") != derive_seed(0, "a", "c")

    def test_path_not_concatenation_ambiguous(self):
        # ("ab",) and ("a", "b") must differ: separator is part of the hash.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_in_numpy_seed_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**32

    def test_usable_as_numpy_seed(self):
        seed = derive_seed(42, "stream")
        np.random.default_rng(seed)  # must not raise


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(0)
        assert reg.get("walks") is reg.get("walks")

    def test_different_names_independent(self):
        reg = RngRegistry(0)
        a = reg.get("a").random(5)
        b = reg.get("b").random(5)
        assert not np.allclose(a, b)

    def test_order_independence(self):
        """Requesting streams in a different order yields the same draws."""
        reg1 = RngRegistry(3)
        reg1.get("x")  # consume nothing, just create
        draws_y1 = reg1.get("y").random(4)

        reg2 = RngRegistry(3)
        draws_y2 = reg2.get("y").random(4)
        assert np.allclose(draws_y1, draws_y2)

    def test_fresh_restarts_stream(self):
        reg = RngRegistry(1)
        first = reg.fresh("s").random(3)
        second = reg.fresh("s").random(3)
        assert np.allclose(first, second)

    def test_child_registry_derives(self):
        parent = RngRegistry(5)
        child = parent.child("zoo")
        assert child.root_seed != parent.root_seed
        # deterministic
        assert child.root_seed == RngRegistry(5).child("zoo").root_seed

    def test_root_seed_property(self):
        assert RngRegistry(9).root_seed == 9
