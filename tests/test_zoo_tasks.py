"""Tests for the task universe: determinism, structure, and Table III roster."""

import numpy as np
import pytest

from repro.zoo import (
    IMAGE_SOURCES,
    IMAGE_TARGETS,
    TEXT_SOURCES,
    TEXT_TARGETS,
    TaskUniverse,
)


class TestRosters:
    def test_image_targets_match_table3(self):
        names = {r[0] for r in IMAGE_TARGETS}
        assert names == {
            "caltech101", "cifar100", "dtd", "flowers", "pets",
            "smallnorb_elevation", "stanfordcars", "svhn",
        }

    def test_text_targets_match_table3(self):
        names = {r[0] for r in TEXT_TARGETS}
        assert {"glue/cola", "glue/sst2", "rotten_tomatoes"} <= names
        assert len(names) == 8

    def test_paper_counts_preserved(self):
        by_name = {r[0]: r for r in IMAGE_TARGETS}
        assert by_name["cifar100"][1] == 50000
        assert by_name["stanfordcars"][2] == 196
        assert by_name["svhn"][1] == 73257

    def test_no_name_collisions(self):
        image = [r[0] for r in IMAGE_TARGETS + IMAGE_SOURCES]
        text = [r[0] for r in TEXT_TARGETS + TEXT_SOURCES]
        assert len(image) == len(set(image))
        assert len(text) == len(set(text))


class TestTaskUniverse:
    def make(self, modality="image", seed=0):
        return TaskUniverse(modality, seed=seed)

    def test_rejects_unknown_modality(self):
        with pytest.raises(ValueError):
            TaskUniverse("audio")

    def test_target_and_source_partition(self):
        u = self.make()
        targets = set(u.target_names())
        sources = set(u.source_names())
        assert targets & sources == set()
        assert targets | sources == set(u.dataset_names())

    def test_spec_deterministic(self):
        a = self.make().spec_for("pets")
        b = self.make().spec_for("pets")
        assert a == b

    def test_spec_unknown_dataset(self):
        with pytest.raises(KeyError):
            self.make().spec_for("not_a_dataset")

    def test_scaled_counts_bounded(self):
        u = self.make()
        for name in u.dataset_names():
            spec = u.spec_for(name)
            if spec.is_target:
                # targets are few-shot by design (smaller budget)
                assert 100 <= spec.num_samples <= 640
            else:
                assert 160 <= spec.num_samples <= 640
            assert 2 <= spec.num_classes <= 12

    def test_class_scaling_preserves_binary(self):
        u = TaskUniverse("text", seed=0)
        assert u.spec_for("glue/cola").num_classes == 2

    def test_materialise_deterministic(self):
        d1 = self.make().materialise("dtd")
        d2 = self.make().materialise("dtd")
        assert np.allclose(d1.x_train, d2.x_train)
        assert np.array_equal(d1.y_train, d2.y_train)

    def test_materialise_seed_sensitivity(self):
        d1 = TaskUniverse("image", seed=0).materialise("dtd")
        d2 = TaskUniverse("image", seed=1).materialise("dtd")
        # A different root seed changes the dataset: either its sampled
        # input dimension differs, or the data values do.
        if d1.x_train.shape == d2.x_train.shape:
            assert not np.allclose(d1.x_train, d2.x_train)

    def test_split_sizes(self):
        dataset = self.make().materialise("flowers", test_fraction=0.25)
        total = dataset.spec.num_samples
        assert len(dataset.x_test) == round(0.25 * total)
        assert len(dataset.x_train) + len(dataset.x_test) == total

    def test_standardised_features(self):
        dataset = self.make().materialise("pets")
        x = dataset.all_x()
        assert np.allclose(x.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(x.std(axis=0), 1.0, atol=1e-3)

    def test_labels_in_range(self):
        dataset = self.make().materialise("svhn")
        y = dataset.all_y()
        assert y.min() >= 0
        assert y.max() < dataset.num_classes

    def test_all_classes_present(self):
        dataset = self.make().materialise("cifar100")
        assert len(np.unique(dataset.y_train)) == dataset.num_classes

    def test_same_domain_datasets_more_similar(self):
        """Same-domain, same-dim datasets should correlate more strongly.

        This is the core structural property of the universe: readouts are
        shared within (domain, input_dim), so the class-conditional means
        of same-domain datasets live in a related subspace.
        """
        u = self.make()
        # Find two same-domain datasets with the same input dim, and a
        # third from a different domain with that dim.
        by_key = {}
        for name in u.dataset_names():
            spec = u.spec_for(name)
            by_key.setdefault((spec.domain, spec.input_dim), []).append(name)
        pair_key = next(k for k, v in by_key.items() if len(v) >= 2)
        a_name, b_name = by_key[pair_key][:2]
        other = next(
            name for name in u.dataset_names()
            if u.spec_for(name).domain != pair_key[0]
            and u.spec_for(name).input_dim == pair_key[1]
        )

        def mean_profile(name):
            d = u.materialise(name)
            return d.all_x().mean(axis=0)  # not informative alone...

        def cov_profile(name):
            d = u.materialise(name)
            x = d.all_x()
            c = np.cov(x.T)
            return c[np.triu_indices_from(c, k=1)]

        same = np.corrcoef(cov_profile(a_name), cov_profile(b_name))[0, 1]
        cross = np.corrcoef(cov_profile(a_name), cov_profile(other))[0, 1]
        assert same > cross

    def test_domain_of(self):
        assert self.make().domain_of("stanfordcars") == "vehicles"
