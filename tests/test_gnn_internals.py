"""Unit tests for the GNN encoder internals (masking, aggregation)."""

import numpy as np
from repro.graph import (
    GATEncoder,
    GraphSAGEEncoder,
    LinkExamples,
    ModelDatasetGraph,
    train_link_prediction,
)
from repro.graph.gnn import _mean_adjacency, _sample_extra_negatives
from repro.nn import Tensor


def path_graph(n=4):
    g = ModelDatasetGraph()
    names = [f"n{i}" for i in range(n)]
    for i, name in enumerate(names):
        g.add_node(name, "model" if i % 2 == 0 else "dataset")
        g.node_features[name] = np.eye(n)[i]
    for a, b in zip(names[:-1], names[1:]):
        g.add_edge(a, b, 1.0, "accuracy")
    return g


class TestMeanAdjacency:
    def test_rows_sum_to_one(self):
        g = path_graph()
        a = _mean_adjacency(g)
        np.testing.assert_allclose(a.sum(axis=1), 1.0)

    def test_self_loops_included(self):
        g = path_graph()
        a = _mean_adjacency(g)
        assert (np.diag(a) > 0).all()


class TestGraphSAGEEncoder:
    def test_output_shape(self):
        g = path_graph()
        enc = GraphSAGEEncoder(4, 8, 6, np.random.default_rng(0))
        out = enc.encode(Tensor(g.feature_matrix()),
                         Tensor(_mean_adjacency(g)))
        assert out.shape == (4, 6)

    def test_neighbors_influence_output(self):
        """Changing a neighbor's features must change a node's encoding."""
        g = path_graph()
        enc = GraphSAGEEncoder(4, 8, 6, np.random.default_rng(0))
        adj = Tensor(_mean_adjacency(g))
        base = enc.encode(Tensor(g.feature_matrix()), adj).numpy()
        perturbed_features = g.feature_matrix()
        idx = g.index()
        perturbed_features[idx["n1"]] += 5.0
        perturbed = enc.encode(Tensor(perturbed_features), adj).numpy()
        assert not np.allclose(base[idx["n0"]], perturbed[idx["n0"]])


class TestGATEncoder:
    def test_attention_respects_mask(self):
        """A non-neighbor's features must NOT change a node's encoding."""
        g = path_graph(5)  # n0-n1-n2-n3-n4; n0 and n4 are 4 hops apart
        enc = GATEncoder(5, 8, 6, np.random.default_rng(1))
        support = g.adjacency_matrix(weighted=False) + np.eye(5)
        idx = g.index()
        base = enc.encode(Tensor(g.feature_matrix()), support).numpy()
        perturbed_features = g.feature_matrix()
        perturbed_features[idx["n4"]] += 5.0
        perturbed = enc.encode(Tensor(perturbed_features), support).numpy()
        # single attention layer: n0 only sees {n0, n1}
        np.testing.assert_allclose(base[idx["n0"]], perturbed[idx["n0"]])
        assert not np.allclose(base[idx["n4"]], perturbed[idx["n4"]])


class TestLinkPredictionTrainer:
    def test_handles_empty_links(self):
        g = path_graph()
        enc = GraphSAGEEncoder(4, 8, 6, np.random.default_rng(2))
        emb = train_link_prediction(enc, g, LinkExamples(), use_mask=False,
                                    epochs=3, lr=1e-3, seed=0)
        assert set(emb) == set(g.nodes())

    def test_negative_topup_balances_classes(self):
        g = path_graph(6)
        links = LinkExamples(positive=[("n0", "n1"), ("n2", "n3"),
                                       ("n4", "n5")],
                             negative=[("n0", "n3")])
        extras = _sample_extra_negatives(g, links, np.random.default_rng(0))
        assert len(extras) == len(links.positive) - len(links.negative)
        existing = set(links.positive) | set(links.negative)
        assert all(pair not in existing for pair in extras)
