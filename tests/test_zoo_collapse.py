"""Tests for the hidden feature-collapse mechanism (DESIGN.md §2).

The mechanism must satisfy two contracts:
1. source accuracy is (approximately) preserved — metadata stays blind;
2. the embedding loses rank — transfer capacity genuinely shrinks.
"""

import numpy as np
import pytest

from repro.zoo import TaskUniverse, ZooModel, sample_model_specs
from repro.zoo.pretrain import PretrainConfig, apply_feature_collapse, pretrain_model


@pytest.fixture(scope="module")
def trained_model_and_dataset():
    universe = TaskUniverse("image", seed=21)
    dataset = universe.materialise("imagenet")
    spec = sample_model_specs(
        "image", 1, ["imagenet"], np.random.default_rng(3),
        source_input_dims={"imagenet": dataset.input_dim})[0]
    spec = type(spec)(**{**spec.__dict__, "feature_collapse": 0.0,
                         "pretrain_epochs": 15})
    model = ZooModel(spec)
    accuracy = pretrain_model(model, dataset, np.random.default_rng(0),
                              PretrainConfig())
    return model, dataset, accuracy


def effective_rank(features: np.ndarray) -> float:
    s = np.linalg.svd(features - features.mean(axis=0), compute_uv=False)
    p = s / s.sum()
    p = p[p > 1e-12]
    return float(np.exp(-(p * np.log(p)).sum()))


class TestFeatureCollapse:
    def test_zero_strength_is_noop(self, trained_model_and_dataset):
        model, dataset, _ = trained_model_and_dataset
        before = model.backbone.state_dict()
        apply_feature_collapse(model, dataset, 0.0, np.random.default_rng(0))
        after = model.backbone.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_collapse_reduces_effective_rank(self, trained_model_and_dataset):
        model, dataset, _ = trained_model_and_dataset
        clone = ZooModel(model.spec)
        clone.backbone.load_state_dict(model.backbone.state_dict())
        clone.head = model.head

        rank_before = effective_rank(clone.features(dataset.x_train))
        apply_feature_collapse(clone, dataset, 1.0, np.random.default_rng(0))
        rank_after = effective_rank(clone.features(dataset.x_train))
        assert rank_after < rank_before

    def test_collapse_mostly_preserves_source_accuracy(
            self, trained_model_and_dataset):
        model, dataset, accuracy = trained_model_and_dataset
        clone = ZooModel(model.spec)
        clone.backbone.load_state_dict(model.backbone.state_dict())
        clone.head = model.new_head(dataset.num_classes,
                                    np.random.default_rng(1))
        # retrain head so the clone is a fair "published checkpoint"
        import repro.nn as nn
        opt = nn.AdamW(clone.head.parameters(), lr=5e-3)
        feats = clone.features(dataset.x_train)
        for _ in range(40):
            loss = nn.cross_entropy(clone.head(nn.Tensor(feats)),
                                    dataset.y_train)
            opt.zero_grad()
            loss.backward()
            opt.step()
        before = clone.accuracy_on(dataset.x_test, dataset.y_test)
        apply_feature_collapse(clone, dataset, 1.0, np.random.default_rng(0))
        after = clone.accuracy_on(dataset.x_test, dataset.y_test)
        # collapse keeps the class-relevant directions: the drop is small
        assert after > before - 0.15

    def test_collapse_hidden_from_catalog(self, tiny_image_zoo):
        """The catalog's model table must not expose feature_collapse."""
        row = tiny_image_zoo.catalog.models.to_records()[0]
        assert "feature_collapse" not in row
        assert "collapse" not in " ".join(row)
