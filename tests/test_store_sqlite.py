"""The durable store: SQLite/Table parity, migrations, the registry index."""

import copy
import json
import pickle
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ArtifactRegistry
from repro.serving.index import INDEX_DB_NAME, RegistryIndex
from repro.store import (
    SCHEMA_VERSION,
    Column,
    Schema,
    SchemaError,
    SQLiteStore,
    StoreVersionError,
    Table,
    ZooCatalog,
    migrate_catalog_json,
)
from repro.strategies import get_strategy


def make_schema():
    return Schema(
        name="t",
        columns=[
            Column("id", "str"),
            Column("score", "float"),
            Column("count", "int", required=False, default=0),
            Column("flag", "bool", required=False, default=False),
        ],
        primary_key=("id",),
    )


@pytest.fixture()
def store(tmp_path):
    s = SQLiteStore(tmp_path / "t.db")
    yield s
    s.close()


class TestSQLiteTableParity:
    """The SQLite twin answers exactly like the in-memory Table."""

    def both(self, store):
        return Table(make_schema()), store.table(make_schema())

    def test_insert_get_types_preserved(self, store):
        for t in self.both(store):
            t.insert({"id": "a", "score": 0.9, "flag": True})
            row = t.get("a")
            assert row["score"] == 0.9
            assert row["flag"] is True
            assert row["count"] == 0
            assert isinstance(row["count"], int)

    def test_duplicate_key_same_message(self, store):
        mem, sql = self.both(store)
        for t in (mem, sql):
            t.insert({"id": "a", "score": 0.9})
        with pytest.raises(SchemaError) as mem_err:
            mem.insert({"id": "a", "score": 0.1})
        with pytest.raises(SchemaError) as sql_err:
            sql.insert({"id": "a", "score": 0.1})
        assert str(mem_err.value) == str(sql_err.value)

    def test_filter_indexed_and_scan_agree(self, store):
        mem, sql = self.both(store)
        for i in range(24):
            row = {"id": f"r{i}", "score": float(i % 3), "count": i % 4}
            mem.insert(row)
            sql.insert(row)
        sql.add_index("count")
        mem.add_index("count")
        for value in range(4):
            assert mem.filter(count=value) == sql.filter(count=value)
        assert mem.filter(score=1.0, count=1) == sql.filter(score=1.0, count=1)

    def test_filter_predicate_and_distinct(self, store):
        mem, sql = self.both(store)
        for i in range(10):
            row = {"id": f"r{i}", "score": i / 10, "count": i % 2}
            mem.insert(row)
            sql.insert(row)
        pred = lambda r: r["score"] > 0.5  # noqa: E731
        assert mem.filter(pred) == sql.filter(pred)
        assert mem.distinct("count") == sql.distinct("count")

    def test_delete_contains_len(self, store):
        mem, sql = self.both(store)
        for t in (mem, sql):
            t.insert({"id": "a", "score": 0.9})
            assert ("a",) in t
            assert len(t) == 1
            t.delete("a")
            assert ("a",) not in t
            assert len(t) == 0
            with pytest.raises(KeyError):
                t.delete("a")

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "t.db"
        store = SQLiteStore(path)
        store.table(make_schema()).insert({"id": "a", "score": 0.5, "flag": True})
        store.close()
        reopened = SQLiteStore(path)
        row = reopened.table(make_schema()).get("a")
        assert row == {"id": "a", "score": 0.5, "count": 0, "flag": True}
        reopened.close()

    def test_wal_mode(self, store):
        assert store.execute("PRAGMA journal_mode")[0][0] == "wal"

    def test_store_not_picklable(self, store):
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(store)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["insert", "upsert", "delete"]),
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(0, 1, allow_nan=False),
            st.integers(0, 3),
            st.booleans(),
        ),
        max_size=25,
    ))
    def test_operation_sequence_parity(self, tmp_path_factory, ops):
        tmp = tmp_path_factory.mktemp("prop")
        store = SQLiteStore(tmp / "t.db")
        mem, sql = Table(make_schema()), store.table(make_schema())
        sql.add_index("count")
        try:
            for op, rid, score, count, flag in ops:
                row = {"id": rid, "score": score, "count": count, "flag": flag}
                if op == "delete":
                    results = []
                    for t in (mem, sql):
                        try:
                            t.delete(rid)
                            results.append("ok")
                        except KeyError:
                            results.append("missing")
                    assert results[0] == results[1]
                else:
                    results = []
                    for t in (mem, sql):
                        try:
                            t.insert(row, upsert=(op == "upsert"))
                            results.append("ok")
                        except SchemaError as exc:
                            results.append(str(exc))
                    assert results[0] == results[1]
            assert mem.to_records() == sql.to_records()
            for count in range(4):
                assert mem.filter(count=count) == sql.filter(count=count)
        finally:
            store.close()


class TestVersioning:
    def test_fresh_store_stamped_current(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_newer_version_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreVersionError, match="refusing to downgrade"):
            SQLiteStore(path)

    def test_unknown_version_gap_refused(self, tmp_path):
        # version far behind with no registered migration chain to it
        path = tmp_path / "ancient.db"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = -1")
        conn.commit()
        conn.close()
        with pytest.raises(StoreVersionError, match="no migration"):
            SQLiteStore(path)

    def test_v1_to_v2_adds_last_hit(self, tmp_path):
        path = tmp_path / "v1.db"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE registry_index (strategy_fp TEXT, target TEXT, "
            "path TEXT, size INTEGER, mtime REAL, "
            "PRIMARY KEY (strategy_fp, target))"
        )
        conn.execute(
            "INSERT INTO registry_index VALUES ('fp', 't1', '/x', 10, 1.0)"
        )
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        store = SQLiteStore(path)
        try:
            assert store.schema_version == SCHEMA_VERSION
            columns = {r[1] for r in store.execute(
                "PRAGMA table_info(registry_index)")}
            assert "last_hit" in columns
            row = store.execute(
                "SELECT last_hit FROM registry_index WHERE target='t1'")
            assert row == [(0.0,)]
        finally:
            store.close()

    def test_v1_catalog_only_database_migrates(self, tmp_path):
        path = tmp_path / "v1cat.db"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()
        store = SQLiteStore(path)
        assert store.schema_version == SCHEMA_VERSION
        store.close()


def populate(cat: ZooCatalog) -> ZooCatalog:
    cat.add_model(model_id="m1", architecture="vit-s", family="vit",
                  modality="image", pretrain_dataset="imagenet",
                  pretrain_accuracy=0.8, num_params=1000, memory_mb=4.0,
                  input_shape=32, embedding_dim=16, depth=3)
    cat.add_dataset(dataset_id="d1", modality="image", num_samples=100,
                    num_classes=5, input_dim=32, is_target=True)
    cat.add_dataset(dataset_id="d2", modality="image", num_samples=200,
                    num_classes=2, input_dim=32)
    cat.record_history("m1", "d1", 0.91)
    cat.record_history("m1", "d2", 0.70, method="lora")
    cat.record_transferability("m1", "d1", "logme", 1.2)
    cat.record_similarity("d2", "d1", 0.66)
    return cat


class TestCatalogMigration:
    def test_json_round_trip_preserves_rows_and_types(self, tmp_path):
        cat = populate(ZooCatalog())
        json_path = tmp_path / "catalog.json"
        cat.save(json_path)
        counts = migrate_catalog_json(json_path, tmp_path / "catalog.db")
        assert counts == cat.stats()

        migrated = ZooCatalog.open(tmp_path / "catalog.db")
        try:
            for name in ZooCatalog._TABLES:
                assert (getattr(migrated, name).to_records()
                        == getattr(cat, name).to_records())
            target_row = migrated.datasets.get("d1")
            assert target_row["is_target"] is True
            assert migrated.get_accuracy("m1", "d2", method="lora") == 0.70
            assert migrated.get_similarity("d1", "d2") == 0.66
        finally:
            migrated.close()

    def test_migration_idempotent(self, tmp_path):
        cat = populate(ZooCatalog())
        json_path = tmp_path / "catalog.json"
        cat.save(json_path)
        first = migrate_catalog_json(json_path, tmp_path / "catalog.db")
        second = migrate_catalog_json(json_path, tmp_path / "catalog.db")
        assert first == second == cat.stats()

    def test_rejects_non_object_payload(self, tmp_path):
        bogus = tmp_path / "catalog.json"
        bogus.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="expected a JSON object"):
            migrate_catalog_json(bogus, tmp_path / "catalog.db")

    def test_migrated_catalog_serves_identical_rankings(self, tiny_image_zoo,
                                                        tmp_path):
        json_path = tmp_path / "catalog.json"
        tiny_image_zoo.catalog.save(json_path)
        migrate_catalog_json(json_path, tmp_path / "catalog.db")

        target = tiny_image_zoo.target_names()[0]
        baseline = get_strategy("lr:all").rank(tiny_image_zoo, target)

        migrated_zoo = copy.copy(tiny_image_zoo)
        migrated_zoo.catalog = ZooCatalog.open(tmp_path / "catalog.db")
        try:
            migrated = get_strategy("lr:all").rank(migrated_zoo, target)
        finally:
            migrated_zoo.catalog.close()
        assert json.dumps(baseline) == json.dumps(migrated)


class TestRegistryIndex:
    def strategy(self):
        return get_strategy("random:3")

    def save_fake(self, registry, strategy, target):
        return registry.save_packed({"k": 1}, {}, strategy, target)

    def test_save_records_and_contains_uses_index(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        strategy = self.strategy()
        self.save_fake(registry, strategy, "t1")
        assert (tmp_path / INDEX_DB_NAME).exists()
        assert registry.contains("t1", strategy)
        row = registry.index.get(strategy.fingerprint(), "t1")
        assert row is not None
        assert row["size"] > 0

    def test_index_self_heals_when_artifact_vanishes(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        strategy = self.strategy()
        path = self.save_fake(registry, strategy, "t1")
        for file in path.iterdir():
            file.unlink()
        path.rmdir()
        assert not registry.contains("t1", strategy)
        assert registry.index.get(strategy.fingerprint(), "t1") is None

    def test_index_adopts_out_of_band_artifacts(self, tmp_path):
        writer = ArtifactRegistry(tmp_path)
        strategy = self.strategy()
        self.save_fake(writer, strategy, "t1")
        writer.close()
        (tmp_path / INDEX_DB_NAME).unlink()

        reader = ArtifactRegistry(tmp_path)
        assert reader.targets(strategy) == ["t1"]
        assert reader.index.get(strategy.fingerprint(), "t1") is not None

    def test_reindex_counts(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        strategy = self.strategy()
        self.save_fake(registry, strategy, "t1")
        self.save_fake(registry, strategy, "t2")
        report = registry.reindex()
        assert report == {"fingerprints": 1, "artifacts_indexed": 2}

    def test_reindex_missing_root(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "nope")
        assert registry.reindex() == {"fingerprints": 0, "artifacts_indexed": 0}

    def test_delete_drops_index_row(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        strategy = self.strategy()
        self.save_fake(registry, strategy, "t1")
        assert registry.delete("t1", strategy)
        assert registry.index.get(strategy.fingerprint(), "t1") is None
        assert not registry.contains("t1", strategy)

    def test_registry_pickles_without_index_handle(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        self.save_fake(registry, self.strategy(), "t1")
        revived = pickle.loads(pickle.dumps(registry))
        assert revived.root == registry.root
        assert revived.contains("t1", self.strategy())

    def test_last_hit_preserved_on_re_record(self, tmp_path):
        index = RegistryIndex(tmp_path / INDEX_DB_NAME)
        index.record("fp", "t1", "/x", size=10, mtime=1.0, last_hit=42.0)
        index.record("fp", "t1", "/x", size=10, mtime=2.0)
        row = index.get("fp", "t1")
        assert row["last_hit"] == 42.0
        assert row["mtime"] == 2.0
        index.close()
