"""Tests for model specs, backbones, adapters, pretraining and fine-tuning."""

import numpy as np
import pytest

from repro.zoo import (
    FinetuneConfig,
    IMAGE_FAMILIES,
    PretrainConfig,
    TaskUniverse,
    TEXT_FAMILIES,
    ZooModel,
    build_feature_extractor,
    family_config,
    full_finetune,
    lora_finetune,
    pretrain_model,
    sample_model_specs,
)


def make_specs(n=6, modality="image", seed=0):
    rng = np.random.default_rng(seed)
    sources = ["imagenet", "places365"] if modality == "image" else ["imdb", "ag_news"]
    return sample_model_specs(modality, n, sources, rng)


class TestSpecs:
    def test_all_families_represented(self):
        specs = make_specs(10)
        assert {s.family for s in specs} == set(IMAGE_FAMILIES)

    def test_unique_ids(self):
        specs = make_specs(12)
        ids = [s.model_id for s in specs]
        assert len(ids) == len(set(ids))

    def test_num_params_matches_backbone(self):
        for spec in make_specs(5):
            model = build_feature_extractor(spec)
            assert model.num_parameters() == spec.num_params()

    def test_memory_proportional_to_params(self):
        spec = make_specs(1)[0]
        assert spec.memory_mb() == pytest.approx(spec.num_params() * 8 / 1e6)

    def test_rejects_empty_sources(self):
        with pytest.raises(ValueError):
            sample_model_specs("image", 3, [], np.random.default_rng(0))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            sample_model_specs("image", 0, ["imagenet"], np.random.default_rng(0))

    def test_family_config_lookup(self):
        assert family_config("vit", "image").activation == "gelu"
        assert family_config("fnet", "text").activation == "tanh"
        with pytest.raises(KeyError):
            family_config("vit", "text")

    def test_text_families_distinct(self):
        assert set(TEXT_FAMILIES) & set(IMAGE_FAMILIES) == set()


class TestZooModel:
    def make_model(self):
        return ZooModel(make_specs(1)[0])

    def test_feature_shape(self):
        model = self.make_model()
        x = np.random.default_rng(0).normal(size=(7, model.spec.input_shape))
        feats = model.features(x)
        assert feats.shape == (7, model.spec.embedding_dim)

    def test_adapter_identity_when_dims_match(self):
        model = self.make_model()
        assert model.adapter_for(model.spec.input_shape) is None

    def test_adapter_deterministic(self):
        model = self.make_model()
        dim = model.spec.input_shape + 8
        a1 = model.adapter_for(dim)
        model2 = ZooModel(model.spec)
        a2 = model2.adapter_for(dim)
        assert np.allclose(a1, a2)

    def test_adapter_changes_with_model(self):
        specs = make_specs(2)
        dim = 99
        a1 = ZooModel(specs[0]).adapter_for(dim)
        a2 = ZooModel(specs[1]).adapter_for(dim)
        assert a1.shape[1] == specs[0].input_shape
        assert a2.shape[1] == specs[1].input_shape

    def test_logits_requires_head(self):
        model = self.make_model()
        with pytest.raises(RuntimeError):
            model.logits(np.zeros((2, model.spec.input_shape)))

    def test_clone_backbone_independent(self):
        model = self.make_model()
        clone = model.clone_backbone()
        clone.parameters()[0].data += 1.0
        assert not np.allclose(clone.parameters()[0].data,
                               model.backbone.parameters()[0].data)

    def test_state_round_trip(self):
        model = self.make_model()
        rng = np.random.default_rng(1)
        model.head = model.new_head(4, rng)
        state = model.state()
        other = ZooModel(model.spec)
        other.load_state(state)
        x = np.random.default_rng(2).normal(size=(3, model.spec.input_shape))
        assert np.allclose(model.logits(x), other.logits(x))


class TestTraining:
    @pytest.fixture(scope="class")
    def dataset(self):
        return TaskUniverse("image", seed=3).materialise("flowers")

    def test_pretrain_improves_over_chance(self, dataset):
        spec = make_specs(1, seed=4)[0]
        # a generous budget for this test
        spec = type(spec)(**{**spec.__dict__, "pretrain_epochs": 30,
                             "input_shape": dataset.input_dim})
        model = ZooModel(spec)
        acc = pretrain_model(model, dataset, np.random.default_rng(0),
                             PretrainConfig())
        assert acc > 1.5 / dataset.num_classes
        assert model.pretrain_accuracy == acc

    def test_full_finetune_returns_result(self, dataset):
        model = ZooModel(make_specs(1, seed=5)[0])
        result = full_finetune(model, dataset, np.random.default_rng(0),
                               FinetuneConfig(epochs=3))
        assert result.method == "finetune"
        assert 0.0 <= result.accuracy <= 1.0
        assert result.dataset == "flowers"

    def test_full_finetune_does_not_mutate_model(self, dataset):
        model = ZooModel(make_specs(1, seed=6)[0])
        before = model.backbone.state_dict()
        full_finetune(model, dataset, np.random.default_rng(0),
                      FinetuneConfig(epochs=2))
        after = model.backbone.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_finetune_deterministic_given_rng(self, dataset):
        model = ZooModel(make_specs(1, seed=7)[0])
        r1 = full_finetune(model, dataset, np.random.default_rng(9),
                           FinetuneConfig(epochs=2))
        r2 = full_finetune(model, dataset, np.random.default_rng(9),
                           FinetuneConfig(epochs=2))
        assert r1.accuracy == r2.accuracy

    def test_lora_finetune(self, dataset):
        model = ZooModel(make_specs(1, seed=8)[0])
        result = lora_finetune(model, dataset, np.random.default_rng(0),
                               FinetuneConfig(lora_epochs=2))
        assert result.method == "lora"
        assert 0.0 <= result.accuracy <= 1.0
