"""The metrics core: thread-safety, bucket edges, exposition golden."""

from __future__ import annotations

import threading

import pytest

from repro.obs import EXPOSITION_CONTENT_TYPE, MetricsRegistry


class TestCounter:
    def test_concurrent_increments_sum_exactly(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", ("worker",))
        threads_n, per_thread = 8, 2000

        def worker(name: str) -> None:
            series = family.labels(name)
            for _ in range(per_thread):
                series.inc()

        threads = [threading.Thread(target=worker, args=(f"w{i % 2}",))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 4 threads per label, not one increment lost to a race
        assert family.labels("w0").value == 4 * per_thread
        assert family.labels("w1").value == 4 * per_thread

    def test_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c").labels()
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_label_value_access_by_name_or_position(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "c", ("a", "b"))
        family.labels("x", "y").inc()
        assert family.labels(b="y", a="x").value == 1.0
        with pytest.raises(ValueError):
            family.labels("x")                       # wrong arity
        with pytest.raises(ValueError):
            family.labels(a="x", nope="y")           # unknown label
        with pytest.raises(ValueError):
            family.labels("x", b="y")                # mixed styles


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        registry = MetricsRegistry()
        family = registry.histogram("h_ms", "h", buckets=(1.0, 5.0, 10.0))
        h = family.labels()
        for value in (0.2, 1.0, 1.0001, 5.0, 10.0, 10.0001):
            h.observe(value)
        counts, total, count = h.snapshot()
        # le=1: {0.2, 1.0}; le=5: {1.0001, 5.0}; le=10: {10.0}; +Inf: rest
        assert counts == [2, 2, 1, 1]
        assert count == 6
        assert total == pytest.approx(0.2 + 1.0 + 1.0001 + 5.0 + 10.0
                                      + 10.0001)

    def test_concurrent_observations_count_exactly(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_ms", "h", buckets=(1.0,)).labels()

        def worker() -> None:
            for _ in range(1000):
                h.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, total, count = h.snapshot()
        assert count == 6000 and counts == [6000, 0]
        assert total == pytest.approx(3000.0)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h_ms", "h", buckets=())


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "g").labels()
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(3.5)

    def test_set_function_is_read_at_render_time(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.gauge("queue_depth", "live depth").labels().set_function(
            lambda: depth[0])
        assert "queue_depth 0" in registry.render()
        depth[0] = 7
        assert "queue_depth 7" in registry.render()


class TestRegistry:
    def test_reregister_same_schema_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "c", ("x",))
        b = registry.counter("c_total", "different help", ("x",))
        assert a is b

    def test_reregister_conflicting_schema_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", ("x",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "c", ("x", "y"))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "c", ("x",))

    def test_exposition_golden(self):
        """Byte-exact Prometheus text exposition of a tiny registry."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Requests handled.",
            ("endpoint", "outcome"))
        requests.labels("rank", "warm").inc(2)
        requests.labels("rank", "cold").inc()
        latency = registry.histogram(
            "repro_latency_ms", "Latency.", ("endpoint",),
            buckets=(1.0, 10.0))
        latency.labels("rank").observe(0.5)
        latency.labels("rank").observe(2.75)
        registry.gauge("repro_queue_depth", "Depth.").labels().set(1)

        assert registry.render() == (
            '# HELP repro_latency_ms Latency.\n'
            '# TYPE repro_latency_ms histogram\n'
            'repro_latency_ms_bucket{endpoint="rank",le="1"} 1\n'
            'repro_latency_ms_bucket{endpoint="rank",le="10"} 2\n'
            'repro_latency_ms_bucket{endpoint="rank",le="+Inf"} 2\n'
            'repro_latency_ms_sum{endpoint="rank"} 3.25\n'
            'repro_latency_ms_count{endpoint="rank"} 2\n'
            '# HELP repro_queue_depth Depth.\n'
            '# TYPE repro_queue_depth gauge\n'
            'repro_queue_depth 1\n'
            '# HELP repro_requests_total Requests handled.\n'
            '# TYPE repro_requests_total counter\n'
            'repro_requests_total{endpoint="rank",outcome="cold"} 1\n'
            'repro_requests_total{endpoint="rank",outcome="warm"} 2\n'
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", ("path",)).labels('a"b\\c\n').inc()
        assert 'path="a\\"b\\\\c\\n"' in registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_exposition_content_type_is_prometheus_text(self):
        assert EXPOSITION_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE
