"""Tests for the Stage-3 feature assembly and TG configuration."""

import numpy as np
import pytest

from repro.core import FeatureAssembler, FeatureSet, TransferGraphConfig
from repro.graph import build_graph, get_graph_learner


@pytest.fixture(scope="module")
def assembled(tiny_image_zoo):
    """A fitted assembler + embeddings shared by the tests below."""
    zoo = tiny_image_zoo
    graph, links = build_graph(zoo)
    embeddings = get_graph_learner("node2vec", dim=8, seed=0).embed(graph, links)
    assembler = FeatureAssembler(zoo=zoo, features=FeatureSet.everything(),
                                 embeddings=embeddings)
    pairs = [(m, d) for m in zoo.model_ids() for d in zoo.target_names()[:2]]
    x, names = assembler.assemble(pairs, fit=True)
    return zoo, assembler, pairs, x, names


class TestFeatureSet:
    def test_paper_variants(self):
        assert FeatureSet.basic() == FeatureSet(
            metadata=True, dataset_similarity=False, transferability=False,
            graph_features=False)
        assert FeatureSet.all_logme().transferability
        assert not FeatureSet.graph_only().metadata
        assert FeatureSet.everything().graph_features

    def test_any_active(self):
        assert not FeatureSet(metadata=False, dataset_similarity=False,
                              transferability=False, graph_features=False).any_active()

    def test_strategy_names(self):
        assert TransferGraphConfig().strategy_name() == "TG:LR,N2V,all"
        cfg = TransferGraphConfig(predictor="xgb", graph_learner="node2vec+",
                                  features=FeatureSet.graph_only())
        assert cfg.strategy_name() == "TG:XGB,N2V+"


class TestFeatureAssembler:
    def test_shapes(self, assembled):
        zoo, _, pairs, x, names = assembled
        assert x.shape == (len(pairs), len(names))
        assert np.isfinite(x).all()

    def test_feature_groups_present(self, assembled):
        _, _, _, _, names = assembled
        assert any(n.startswith("model.num_params") for n in names)
        assert any(n.startswith("model.family=") for n in names)
        assert "pair.source_target_similarity" in names
        assert any("graph_emb_product" in n for n in names)
        assert "pair.graph_emb_dot" in names

    def test_prediction_set_aligned(self, assembled):
        zoo, assembler, _, x, names = assembled
        target = zoo.target_names()[-1]
        pred_pairs = [(m, target) for m in zoo.model_ids()]
        x_pred, names_pred = assembler.assemble(pred_pairs, fit=False)
        assert names_pred == names
        assert x_pred.shape == (len(pred_pairs), x.shape[1])

    def test_predict_before_fit_raises(self, tiny_image_zoo):
        assembler = FeatureAssembler(zoo=tiny_image_zoo,
                                     features=FeatureSet.basic())
        with pytest.raises(RuntimeError, match="fit=True"):
            assembler.assemble([(tiny_image_zoo.model_ids()[0],
                                 tiny_image_zoo.target_names()[0])], fit=False)

    def test_empty_pairs_rejected(self, tiny_image_zoo):
        assembler = FeatureAssembler(zoo=tiny_image_zoo,
                                     features=FeatureSet.basic())
        with pytest.raises(ValueError, match="no pairs"):
            assembler.assemble([], fit=True)

    def test_graph_features_need_embeddings(self, tiny_image_zoo):
        with pytest.raises(ValueError, match="embeddings"):
            FeatureAssembler(zoo=tiny_image_zoo,
                             features=FeatureSet.everything(),
                             embeddings=None)

    def test_empty_featureset_rejected(self, tiny_image_zoo):
        empty = FeatureSet(metadata=False, dataset_similarity=False,
                           transferability=False, graph_features=False)
        with pytest.raises(ValueError, match="no feature groups"):
            FeatureAssembler(zoo=tiny_image_zoo, features=empty)

    def test_similarity_feature_self_is_one(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        assembler = FeatureAssembler(zoo=zoo, features=FeatureSet.all_no_graph())
        model_id = zoo.model_ids()[0]
        source = zoo.model(model_id).spec.pretrain_dataset
        x, names = assembler.assemble([(model_id, source)], fit=True)
        col = names.index("pair.source_target_similarity")
        assert x[0, col] == 1.0

    def test_transferability_feature_normalised(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        assembler = FeatureAssembler(zoo=zoo, features=FeatureSet.all_logme())
        target = zoo.target_names()[0]
        pairs = [(m, target) for m in zoo.model_ids()]
        x, names = assembler.assemble(pairs, fit=True)
        col = names.index("pair.transferability")
        values = x[:, col]
        assert values.min() >= 0.0 and values.max() <= 1.0
        assert values.max() == pytest.approx(1.0)
