"""The v1 wire protocol: strict round-trips, validation, stable encoding."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    ERROR_CODES,
    CompareRequest,
    CompareResponse,
    ErrorResponse,
    ProtocolError,
    RankRequest,
    RankResponse,
    ScoreBatchRequest,
    ScoreBatchResponse,
    StatsResponse,
    StrategyComparison,
    message_from_json,
)

_name = st.text(st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=24)
_score = st.floats(allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------- #
# round-trip properties
# ---------------------------------------------------------------------- #
class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(target=_name, namespace=_name,
           top_k=st.none() | st.integers(min_value=1, max_value=1000))
    def test_rank_request(self, target, namespace, top_k):
        request = RankRequest(target=target, namespace=namespace, top_k=top_k)
        assert RankRequest.from_json(request.to_json()) == request
        # the encoding itself is stable (byte-identical re-serialisation)
        assert RankRequest.from_json(request.to_json()).to_json() == \
            request.to_json()

    @settings(max_examples=60, deadline=None)
    @given(namespace=_name, target=_name,
           ranking=st.lists(st.tuples(_name, _score), max_size=12))
    def test_rank_response(self, namespace, target, ranking):
        response = RankResponse(namespace=namespace, target=target,
                                ranking=tuple(ranking))
        revived = RankResponse.from_json(response.to_json())
        assert revived == response
        # scores survive the wire bit-exactly (shortest-repr floats)
        assert [s for _, s in revived.ranking] == [float(s)
                                                   for _, s in ranking]

    @settings(max_examples=60, deadline=None)
    @given(namespace=_name,
           pairs=st.lists(st.tuples(_name, _name), max_size=10))
    def test_score_batch_pair(self, namespace, pairs):
        request = ScoreBatchRequest(pairs=tuple(pairs), namespace=namespace)
        assert ScoreBatchRequest.from_json(request.to_json()) == request
        response = ScoreBatchResponse.build(
            request, [float(i) for i in range(len(pairs))])
        assert ScoreBatchResponse.from_json(response.to_json()) == response

    @settings(max_examples=40, deadline=None)
    @given(code=st.sampled_from(sorted(ERROR_CODES)), message=_name,
           retry=st.none() | st.floats(min_value=0, max_value=1e6,
                                       allow_nan=False))
    def test_error_response(self, code, message, retry):
        error = ErrorResponse(code=code, message=message, retry_after_s=retry)
        assert ErrorResponse.from_json(error.to_json()) == error

    def test_stats_response(self):
        stats = StatsResponse(
            namespaces={"image": {"queries": 3.0, "p50_ms": 1.5}},
            fleet={"queries": 3.0, "namespaces": 1.0})
        assert StatsResponse.from_json(stats.to_json()) == stats

    @settings(max_examples=40, deadline=None)
    @given(target=_name, namespace=_name)
    def test_kind_dispatch(self, target, namespace):
        for message in (RankRequest(target=target, namespace=namespace),
                        ScoreBatchRequest(pairs=((target, target),),
                                          namespace=namespace),
                        CompareRequest(target=target, namespace=namespace),
                        ErrorResponse(code="internal", message="x")):
            assert message_from_json(message.to_json()) == message

    @settings(max_examples=40, deadline=None)
    @given(namespace=_name, target=_name, reference=_name,
           ranking=st.lists(st.tuples(_name, _score), min_size=1,
                            max_size=8, unique_by=lambda kv: kv[0]),
           retry=st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_compare_response_round_trip(self, namespace, target,
                                         reference, ranking, retry):
        """The compare pair is byte-stable like every other v1 message."""
        ok = StrategyComparison(status="ok", ranking=tuple(ranking),
                                pearson=0.5, spearman=-0.5,
                                top_k_overlap=1.0,
                                latency={"p50_ms": 1.0})
        shed = StrategyComparison(status="shed", retry_after_s=retry)
        response = CompareResponse(namespace=namespace, target=target,
                                   reference=reference, top_k=3,
                                   results={reference: ok,
                                            reference + "!": shed})
        revived = CompareResponse.from_json(response.to_json())
        assert revived == response
        assert revived.to_json() == response.to_json()


# ---------------------------------------------------------------------- #
# strict validation
# ---------------------------------------------------------------------- #
class TestValidation:
    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            RankRequest.from_json("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            RankRequest.from_json("[1, 2]")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            RankRequest.from_json('{"target": "dtd", "tpo_k": 3}')

    def test_rejects_missing_required(self):
        with pytest.raises(ProtocolError, match="missing required"):
            RankRequest.from_json('{"namespace": "image"}')

    def test_rejects_wrong_kind(self):
        payload = {"kind": "score_batch", "target": "dtd"}
        with pytest.raises(ProtocolError, match="kind"):
            RankRequest.from_json(json.dumps(payload))

    def test_rejects_bad_top_k(self):
        for bad in (0, -3, "five", 1.5, True):
            with pytest.raises(ProtocolError, match="top_k"):
                RankRequest(target="dtd", top_k=bad)

    def test_rejects_empty_target(self):
        with pytest.raises(ProtocolError, match="target"):
            RankRequest(target="")

    def test_rejects_malformed_pairs(self):
        for bad in ("mo", [["m0"]], [["m0", "d0", "x"]], [[1, "d0"]]):
            with pytest.raises(ProtocolError):
                ScoreBatchRequest(pairs=bad)

    def test_rejects_score_length_mismatch(self):
        with pytest.raises(ProtocolError, match="length"):
            ScoreBatchResponse(namespace="n", pairs=(("m", "d"),),
                               scores=(1.0, 2.0))

    def test_rejects_unknown_error_code(self):
        with pytest.raises(ProtocolError, match="code"):
            ErrorResponse(code="oops", message="x")

    def test_rejects_negative_retry_after(self):
        with pytest.raises(ProtocolError, match="retry_after_s"):
            ErrorResponse(code="queue_full", message="x", retry_after_s=-1)

    def test_rejects_non_finite_scores(self):
        """NaN/Infinity would serialise as RFC-invalid JSON; the
        protocol refuses to build such a response at all."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ProtocolError, match="finite"):
                RankResponse(namespace="n", target="t",
                             ranking=(("m", bad),))

    def test_rejects_unknown_message_kind(self):
        with pytest.raises(ProtocolError, match="unknown message kind"):
            message_from_json('{"kind": "frobnicate"}')

    def test_rejects_unhashable_message_kind(self):
        """A list-valued kind must be a ProtocolError, not a TypeError
        out of the registry lookup."""
        with pytest.raises(ProtocolError, match="unknown message kind"):
            message_from_json('{"kind": ["rank"]}')

    def test_errors_never_echo_values_of_wrong_type(self):
        """Validation errors name the field and the *type*, not the
        payload contents (which could be attacker-controlled junk)."""
        secret = "super-secret-blob"
        with pytest.raises(ProtocolError) as exc_info:
            RankRequest(target={"blob": secret})
        assert secret not in str(exc_info.value)


# ---------------------------------------------------------------------- #
# the additive strategy field (protocol v1 growth rule)
# ---------------------------------------------------------------------- #
class TestStrategyField:
    @settings(max_examples=40, deadline=None)
    @given(target=_name, namespace=_name,
           strategy=st.none() | _name)
    def test_rank_request_round_trips_with_strategy(self, target, namespace,
                                                    strategy):
        request = RankRequest(target=target, namespace=namespace,
                              strategy=strategy)
        revived = RankRequest.from_json(request.to_json())
        assert revived == request
        assert revived.strategy == strategy

    def test_omitted_strategy_keeps_pre_strategy_bytes(self):
        """Additive-only rule: no-strategy messages serialise exactly as
        the pre-strategy protocol did."""
        request = RankRequest(target="dtd", namespace="image", top_k=3)
        assert request.to_json() == (
            '{"kind":"rank","namespace":"image","target":"dtd","top_k":3}')
        batch = ScoreBatchRequest(pairs=(("m0", "dtd"),), namespace="image")
        assert batch.to_json() == (
            '{"kind":"score_batch","namespace":"image",'
            '"pairs":[["m0","dtd"]]}')
        response = RankResponse(namespace="image", target="dtd",
                                ranking=(("m0", 1.0),))
        assert '"strategy"' not in response.to_json()

    def test_present_strategy_appears_on_the_wire(self):
        request = RankRequest(target="dtd", strategy="logme")
        assert '"strategy":"logme"' in request.to_json()
        response = RankResponse.build(request, [("m0", 1.0)])
        assert response.strategy == "logme"
        assert '"strategy":"logme"' in response.to_json()
        batch = ScoreBatchRequest(pairs=(("m0", "dtd"),), strategy="logme")
        scored = ScoreBatchResponse.build(batch, [0.5])
        assert scored.strategy == "logme"
        assert ScoreBatchResponse.from_json(scored.to_json()) == scored

    def test_build_echoes_the_request_strategy_verbatim(self):
        request = RankRequest(target="dtd", strategy="LogME")
        assert RankResponse.build(request, []).strategy == "LogME"
        plain = RankRequest(target="dtd")
        assert RankResponse.build(plain, []).strategy is None

    def test_strategy_must_be_null_or_nonempty_string(self):
        for bad in ("", 7, ["logme"]):
            with pytest.raises(ProtocolError):
                RankRequest(target="dtd", strategy=bad)
            with pytest.raises(ProtocolError):
                ScoreBatchRequest(pairs=(("m", "d"),), strategy=bad)

    def test_unknown_strategy_error_code_registered(self):
        error = ErrorResponse(code="unknown_strategy",
                              message="unknown strategy 'x'")
        assert ErrorResponse.from_json(error.to_json()) == error


# ---------------------------------------------------------------------- #
# the additive request_id field (observability correlation)
# ---------------------------------------------------------------------- #
class TestRequestIdField:
    @settings(max_examples=40, deadline=None)
    @given(target=_name, namespace=_name, request_id=st.none() | _name)
    def test_round_trips_with_request_id(self, target, namespace,
                                         request_id):
        for request in (RankRequest(target=target, namespace=namespace,
                                    request_id=request_id),
                        CompareRequest(target=target, namespace=namespace,
                                       request_id=request_id),
                        ScoreBatchRequest(pairs=((target, target),),
                                          namespace=namespace,
                                          request_id=request_id)):
            revived = type(request).from_json(request.to_json())
            assert revived == request
            assert revived.request_id == request_id

    def test_omitted_request_id_keeps_prior_bytes(self):
        """Additive-only rule: messages without a request_id serialise
        exactly as the pre-observability protocol did."""
        request = RankRequest(target="dtd", namespace="image", top_k=3)
        assert request.to_json() == (
            '{"kind":"rank","namespace":"image","target":"dtd","top_k":3}')
        for message in (request,
                        ScoreBatchRequest(pairs=(("m0", "dtd"),)),
                        CompareRequest(target="dtd"),
                        RankResponse(namespace="image", target="dtd",
                                     ranking=(("m0", 1.0),))):
            assert '"request_id"' not in message.to_json()

    def test_build_echoes_request_id_only_when_present(self):
        tagged = RankRequest(target="dtd", request_id="req-1")
        response = RankResponse.build(tagged, [("m0", 1.0)])
        assert response.request_id == "req-1"
        assert '"request_id":"req-1"' in response.to_json()
        assert RankResponse.from_json(response.to_json()) == response

        plain = RankRequest(target="dtd")
        assert RankResponse.build(plain, []).request_id is None

        batch = ScoreBatchRequest(pairs=(("m0", "dtd"),),
                                  request_id="req-2")
        scored = ScoreBatchResponse.build(batch, [0.5])
        assert scored.request_id == "req-2"
        assert ScoreBatchResponse.from_json(scored.to_json()) == scored

    def test_request_id_must_be_null_or_nonempty_string(self):
        for bad in ("", 7, ["rid"]):
            with pytest.raises(ProtocolError):
                RankRequest(target="dtd", request_id=bad)
            with pytest.raises(ProtocolError):
                CompareRequest(target="dtd", request_id=bad)

    def test_stats_response_strategies_block(self):
        """fit_ms summaries ride the stats response only when present."""
        bare = StatsResponse(namespaces={}, fleet={"queries": 0.0})
        assert '"strategies"' not in bare.to_json()
        costed = StatsResponse(
            namespaces={}, fleet={"queries": 1.0},
            strategies={"img": {"logme": {"fit_ms_p50": 1.5,
                                          "fit_ms_p95": 2.0,
                                          "fits_timed": 2.0}}})
        assert StatsResponse.from_json(costed.to_json()) == costed
