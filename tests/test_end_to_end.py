"""End-to-end smoke tests across modalities and failure-injection checks."""

import numpy as np
import pytest

from repro.baselines import FeatureBasedStrategy, RandomSelection
from repro.core import (
    FeatureSet,
    TransferGraph,
    TransferGraphConfig,
    evaluate_strategy,
)
from repro.graph import GraphConfig


def tg(predictor="lr", **overrides):
    defaults = dict(predictor=predictor, graph_learner="node2vec",
                    embedding_dim=8, features=FeatureSet.everything())
    defaults.update(overrides)
    return TransferGraph(TransferGraphConfig(**defaults))


class TestTextModality:
    def test_full_pipeline_on_text(self, tiny_text_zoo):
        ev = evaluate_strategy(tg(), tiny_text_zoo)
        assert set(ev.results) == set(tiny_text_zoo.target_names())
        assert np.isfinite(ev.average_correlation())

    def test_logme_on_text(self, tiny_text_zoo):
        ev = evaluate_strategy(FeatureBasedStrategy("logme"), tiny_text_zoo)
        assert np.isfinite(ev.average_correlation())

    def test_lora_ground_truth_evaluation(self, tiny_text_zoo):
        tiny_text_zoo.ensure_lora_history()
        ev = evaluate_strategy(RandomSelection(), tiny_text_zoo,
                               ground_truth_method="lora")
        assert set(ev.results) == set(tiny_text_zoo.target_names())


class TestNoHistoryScenario:
    def test_cold_start_pipeline(self, tiny_image_zoo):
        config = GraphConfig(use_accuracy_edges=False,
                             include_pretrain_edges=False)
        strategy = tg(graph=config)
        ev = evaluate_strategy(strategy, tiny_image_zoo)
        assert np.isfinite(ev.average_correlation())

    def test_history_ratio_pipeline(self, tiny_image_zoo):
        strategy = tg(graph=GraphConfig(history_ratio=0.5))
        ev = evaluate_strategy(strategy, tiny_image_zoo)
        assert np.isfinite(ev.average_correlation())


class TestFailureInjection:
    def test_strategy_missing_model_detected(self, tiny_image_zoo):
        class BrokenStrategy:
            name = "broken"

            def scores_for_target(self, zoo, target):
                scores = RandomSelection().scores_for_target(zoo, target)
                scores.pop(next(iter(scores)))
                return scores

        with pytest.raises(ValueError, match="no score for"):
            evaluate_strategy(BrokenStrategy(), tiny_image_zoo)

    def test_missing_ground_truth_detected(self, tiny_image_zoo):
        with pytest.raises(KeyError):
            tiny_image_zoo.ground_truth(tiny_image_zoo.target_names()[0],
                                        method="quantum")

    def test_constant_scores_yield_zero_correlation(self, tiny_image_zoo):
        class ConstantStrategy:
            name = "constant"

            def scores_for_target(self, zoo, target):
                return {m: 0.5 for m in zoo.model_ids()}

        ev = evaluate_strategy(ConstantStrategy(), tiny_image_zoo)
        assert ev.average_correlation() == 0.0


class TestDeterminismAcrossRuns:
    def test_full_tg_pipeline_deterministic(self, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        a = tg(seed=11).scores_for_target(tiny_image_zoo, target)
        b = tg(seed=11).scores_for_target(tiny_image_zoo, target)
        assert a == b

    def test_evaluation_object_consistency(self, tiny_image_zoo):
        ev = evaluate_strategy(RandomSelection(3), tiny_image_zoo)
        k_accs = [r.top_k_accuracy(3) for r in ev.results.values()]
        assert ev.average_top_k_accuracy(3) == pytest.approx(np.mean(k_accs))
