"""ArtifactRegistry.gc: live artifacts stay, everything else goes."""

from __future__ import annotations

import json

import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.serving import ArtifactRegistry, SelectionService
from repro.serving.fingerprint import config_fingerprint


@pytest.fixture(scope="module")
def live_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


@pytest.fixture(scope="module")
def dead_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything(), seed=99)


def _populate(registry, zoo, config, n_targets=1):
    service = SelectionService(zoo, config, registry=registry)
    targets = zoo.target_names()[:n_targets]
    service.warmup(targets)
    return targets


class TestRegistryGC:
    def test_dead_namespace_swept_live_kept(self, tiny_image_zoo, tmp_path,
                                            live_config, dead_config):
        registry = ArtifactRegistry(tmp_path)
        live_targets = _populate(registry, tiny_image_zoo, live_config, 2)
        _populate(registry, tiny_image_zoo, dead_config, 1)

        report = registry.gc([live_config], tiny_image_zoo)
        assert report["namespaces_removed"] == 1
        assert report["artifacts_removed"] == 1
        assert report["artifacts_kept"] == 2
        assert report["bytes_reclaimed"] > 0

        assert registry.targets(live_config) == sorted(live_targets)
        assert registry.targets(dead_config) == []
        # Survivors still load.
        registry.load(live_targets[0], live_config, tiny_image_zoo)

    def test_stale_catalog_artifact_removed(self, tiny_image_zoo, tmp_path,
                                            live_config):
        registry = ArtifactRegistry(tmp_path)
        t1, t2 = _populate(registry, tiny_image_zoo, live_config, 2)

        meta_path = registry.path_for(t1, live_config) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["catalog_fingerprint"] = "0" * 20
        meta_path.write_text(json.dumps(meta))

        report = registry.gc([live_config], tiny_image_zoo)
        assert report["artifacts_removed"] == 1
        assert report["artifacts_kept"] == 1
        assert registry.targets(live_config) == [t2]

    def test_without_zoo_catalog_staleness_is_not_checked(
            self, tiny_image_zoo, tmp_path, live_config):
        """gc(configs) alone only sweeps dead namespaces/partials."""
        registry = ArtifactRegistry(tmp_path)
        (t1,) = _populate(registry, tiny_image_zoo, live_config, 1)

        meta_path = registry.path_for(t1, live_config) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["catalog_fingerprint"] = "0" * 20
        meta_path.write_text(json.dumps(meta))

        report = registry.gc([live_config])
        assert report["artifacts_removed"] == 0
        assert report["artifacts_kept"] == 1

    def test_partial_artifact_directory_removed(self, tiny_image_zoo,
                                                tmp_path, live_config):
        registry = ArtifactRegistry(tmp_path)
        namespace = tmp_path / config_fingerprint(live_config)
        partial = namespace / "half_written"
        partial.mkdir(parents=True)
        (partial / "arrays.npz").write_bytes(b"not finished")

        report = registry.gc([live_config], tiny_image_zoo)
        assert report["artifacts_removed"] == 1
        assert not partial.exists()

    def test_unreadable_meta_counts_as_stale(self, tiny_image_zoo, tmp_path,
                                             live_config):
        registry = ArtifactRegistry(tmp_path)
        (t1,) = _populate(registry, tiny_image_zoo, live_config, 1)
        meta_path = registry.path_for(t1, live_config) / "meta.json"
        meta_path.write_text('{"trunc')

        report = registry.gc([live_config], tiny_image_zoo)
        assert report["artifacts_removed"] == 1
        assert registry.targets(live_config) == []

    def test_dry_run_touches_nothing(self, tiny_image_zoo, tmp_path,
                                     live_config, dead_config):
        registry = ArtifactRegistry(tmp_path)
        _populate(registry, tiny_image_zoo, live_config, 1)
        _populate(registry, tiny_image_zoo, dead_config, 1)

        dry = registry.gc([live_config], tiny_image_zoo, dry_run=True)
        assert dry["namespaces_removed"] == 1
        assert dry["bytes_reclaimed"] > 0
        # Nothing actually deleted:
        assert registry.targets(dead_config) != []

        wet = registry.gc([live_config], tiny_image_zoo)
        assert wet["bytes_reclaimed"] == dry["bytes_reclaimed"]
        assert registry.targets(dead_config) == []

    def test_missing_root_is_a_noop(self, tmp_path, live_config):
        registry = ArtifactRegistry(tmp_path / "never_created")
        report = registry.gc([live_config])
        assert report == {"namespaces_removed": 0, "artifacts_removed": 0,
                          "artifacts_kept": 0, "bytes_reclaimed": 0}


class TestGatewayLayoutGC:
    """layout='namespaces' sweeps <root>/<namespace>/<fp>/<target>."""

    def _populate_shard(self, root, ns, zoo, config, n_targets=1):
        return _populate(ArtifactRegistry(root / ns), zoo, config, n_targets)

    def test_sweeps_inside_every_namespace_shard(self, tiny_image_zoo,
                                                 tmp_path, live_config,
                                                 dead_config):
        root = tmp_path / "shards"
        live_targets = self._populate_shard(root, "image", tiny_image_zoo,
                                            live_config, 2)
        self._populate_shard(root, "image", tiny_image_zoo, dead_config, 1)
        self._populate_shard(root, "text", tiny_image_zoo, dead_config, 1)

        report = ArtifactRegistry(root).gc([live_config], tiny_image_zoo,
                                           layout="namespaces")
        assert report["namespaces_removed"] == 2   # dead fp in both shards
        assert report["artifacts_removed"] == 2
        assert report["artifacts_kept"] == 2
        assert report["bytes_reclaimed"] > 0

        image = ArtifactRegistry(root / "image")
        assert image.targets(live_config) == sorted(live_targets)
        assert image.targets(dead_config) == []
        image.load(live_targets[0], live_config, tiny_image_zoo)

    def test_namespace_directories_survive_even_when_emptied(
            self, tiny_image_zoo, tmp_path, dead_config):
        """Shard dirs are operator-named slugs, never fingerprint-matched."""
        root = tmp_path / "shards"
        self._populate_shard(root, "only-dead", tiny_image_zoo, dead_config)
        report = ArtifactRegistry(root).gc([], tiny_image_zoo,
                                           layout="namespaces")
        assert report["namespaces_removed"] == 1
        assert (root / "only-dead").is_dir()

    def test_flat_gc_would_wrongly_kill_shards_hence_the_layout_flag(
            self, tiny_image_zoo, tmp_path, live_config):
        """The motivating bug: a flat sweep sees namespace slugs as dead
        fingerprint dirs.  The namespaces layout keeps them."""
        root = tmp_path / "shards"
        self._populate_shard(root, "image", tiny_image_zoo, live_config)

        dry_flat = ArtifactRegistry(root).gc([live_config], tiny_image_zoo,
                                             dry_run=True)
        assert dry_flat["namespaces_removed"] == 1  # would destroy the shard

        sharded = ArtifactRegistry(root).gc([live_config], tiny_image_zoo,
                                            layout="namespaces")
        assert sharded["namespaces_removed"] == 0
        assert sharded["artifacts_kept"] == 1

    def test_dry_run_touches_nothing(self, tiny_image_zoo, tmp_path,
                                     dead_config):
        root = tmp_path / "shards"
        self._populate_shard(root, "image", tiny_image_zoo, dead_config)
        report = ArtifactRegistry(root).gc([], tiny_image_zoo, dry_run=True,
                                           layout="namespaces")
        assert report["namespaces_removed"] == 1
        assert ArtifactRegistry(root / "image").targets(dead_config) != []

    def test_rejects_unknown_layout(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactRegistry(tmp_path).gc([], layout="nested")

    def test_live_set_accepts_strategies_and_specs(self, tiny_image_zoo,
                                                   tmp_path):
        """gc's live set speaks the strategy API, not just configs."""
        from repro.strategies import get_strategy

        registry = ArtifactRegistry(tmp_path)
        logme = get_strategy("logme")
        target = tiny_image_zoo.target_names()[0]
        registry.save(logme.fit(tiny_image_zoo, target), logme,
                      tiny_image_zoo)
        report = registry.gc(["logme"], tiny_image_zoo)
        assert report == {"namespaces_removed": 0, "artifacts_removed": 0,
                          "artifacts_kept": 1, "bytes_reclaimed": 0}
        swept = registry.gc(["leep"], tiny_image_zoo)
        assert swept["namespaces_removed"] == 1
        assert registry.targets(logme) == []
