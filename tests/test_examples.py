"""The examples must at least import cleanly and expose a main()."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples")
                  .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


def test_example_roster_complete():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "image_zoo_selection", "text_zoo_selection",
            "ablation_study", "no_history_cold_start"} <= names
