"""SelectionService: cache accounting, invalidation, rank correctness."""

import numpy as np
import pytest

from repro.core import FeatureSet, TransferGraph, TransferGraphConfig
from repro.serving import (
    ArtifactRegistry,
    SelectionService,
    WorkloadConfig,
    generate_workload,
    replay,
)


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


class TestCacheAccounting:
    def test_hit_miss_counters(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        service.rank(target)
        service.rank(target)
        service.rank(target)
        stats = service.stats()
        assert stats["queries"] == 3
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 2
        assert stats["fits"] == 1
        assert stats["registry_hits"] == 0
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert len(service._stats.latencies_ms) == 3

    def test_lru_eviction(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config, cache_size=1)
        t1, t2 = tiny_image_zoo.target_names()[:2]
        service.rank(t1)
        service.rank(t2)   # evicts t1
        service.rank(t1)   # refits t1
        stats = service.stats()
        assert stats["fits"] == 3
        assert stats["evictions"] == 2

    def test_unknown_target_raises(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        with pytest.raises(KeyError):
            service.rank("not_a_dataset")

    def test_rejects_empty_cache(self, tiny_image_zoo, lr_config):
        with pytest.raises(ValueError):
            SelectionService(tiny_image_zoo, lr_config, cache_size=0)


class TestRankCorrectness:
    def test_rank_matches_fresh_strategy(self, tiny_image_zoo, lr_config):
        target = tiny_image_zoo.target_names()[0]
        service = SelectionService(tiny_image_zoo, lr_config)
        served = service.rank(target)
        fresh = TransferGraph(lr_config).rank_models(tiny_image_zoo, target)
        assert [m for m, _ in served] == [m for m, _ in fresh]
        assert [s for _, s in served] == pytest.approx(
            [s for _, s in fresh], rel=1e-12)

    def test_top_k_truncates(self, tiny_image_zoo, lr_config):
        target = tiny_image_zoo.target_names()[0]
        service = SelectionService(tiny_image_zoo, lr_config)
        full = service.rank(target)
        assert service.rank(target, top_k=2) == full[:2]

    def test_score_batch_matches_rank_scores(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        t1, t2 = tiny_image_zoo.target_names()[:2]
        models = tiny_image_zoo.model_ids()
        pairs = [(models[0], t1), (models[1], t2), (models[2], t1)]
        scores = service.score_batch(pairs)
        assert scores.shape == (3,)
        by_target = {t1: dict(service.rank(t1)), t2: dict(service.rank(t2))}
        for (model, target), score in zip(pairs, scores):
            # last-ulp tolerance: BLAS sums differ across batch shapes
            assert score == pytest.approx(by_target[target][model],
                                          rel=1e-12)

    def test_score_batch_empty(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        assert service.score_batch([]).shape == (0,)


class TestInvalidation:
    def test_invalidate_forces_refit(self, tiny_image_zoo, lr_config,
                                     tmp_path):
        registry = ArtifactRegistry(tmp_path)
        service = SelectionService(tiny_image_zoo, lr_config,
                                   registry=registry)
        target = tiny_image_zoo.target_names()[0]
        before = service.rank(target)
        assert registry.contains(target, lr_config)

        service.invalidate(target)
        assert not registry.contains(target, lr_config)

        after = service.rank(target)
        stats = service.stats()
        assert stats["fits"] == 2          # the refit really happened
        assert stats["registry_hits"] == 0
        assert stats["invalidations"] == 1
        assert [m for m, _ in after] == [m for m, _ in before]


class TestCorruptArtifacts:
    def test_service_refits_over_corrupt_artifact(self, tiny_image_zoo,
                                                  lr_config, tmp_path):
        """A broken on-disk artifact degrades to a refit, never a crash."""
        registry = ArtifactRegistry(tmp_path)
        target = tiny_image_zoo.target_names()[0]
        first = SelectionService(tiny_image_zoo, lr_config, registry=registry)
        served = first.rank(target)

        path = registry.path_for(target, lr_config)
        (path / "meta.json").write_text('{"trunc')

        second = SelectionService(tiny_image_zoo, lr_config,
                                  registry=registry)
        revived = second.rank(target)
        stats = second.stats()
        assert stats["fits"] == 1
        assert stats["registry_hits"] == 0
        assert [m for m, _ in revived] == [m for m, _ in served]
        # The write-through repaired the artifact on disk.
        registry.load(target, lr_config, tiny_image_zoo)


class TestRegistryWarmStart:
    def test_second_service_avoids_refitting(self, tiny_image_zoo, lr_config,
                                             tmp_path):
        registry = ArtifactRegistry(tmp_path)
        target = tiny_image_zoo.target_names()[0]

        first = SelectionService(tiny_image_zoo, lr_config, registry=registry)
        served = first.rank(target)
        assert first.stats()["fits"] == 1

        second = SelectionService(tiny_image_zoo, lr_config,
                                  registry=registry)
        revived = second.rank(target)
        stats = second.stats()
        assert stats["fits"] == 0
        assert stats["registry_hits"] == 1
        assert [m for m, _ in revived] == [m for m, _ in served]
        assert np.array_equal([s for _, s in revived], [s for _, s in served])

    def test_warmup_prefits_all_targets(self, tiny_image_zoo, lr_config,
                                        tmp_path):
        registry = ArtifactRegistry(tmp_path)
        service = SelectionService(tiny_image_zoo, lr_config,
                                   registry=registry)
        timings = service.warmup()
        targets = tiny_image_zoo.target_names()
        assert sorted(timings) == targets
        assert registry.targets(lr_config) == targets
        assert service.stats()["queries"] == 0  # warmup is not traffic

        service.rank(targets[0])
        stats = service.stats()
        assert stats["fits"] == len(targets)
        assert stats["cache_hits"] == 1


class TestWorkload:
    def test_generate_is_reproducible(self, tiny_image_zoo):
        config = WorkloadConfig(num_queries=50, seed=13)
        a = generate_workload(tiny_image_zoo, config)
        b = generate_workload(tiny_image_zoo, config)
        assert a == b
        assert len(a) == 50
        kinds = {q.kind for q in a}
        assert kinds <= {"rank", "score_batch"}

    def test_replay_reports_only_its_own_traffic(self, tiny_image_zoo,
                                                 lr_config):
        """Warmup fits must not deflate the replayed workload's stats."""
        service = SelectionService(tiny_image_zoo, lr_config)
        service.warmup()
        workload = generate_workload(
            tiny_image_zoo, WorkloadConfig(num_queries=20, seed=9))
        summary = replay(service, workload)
        assert summary["queries"] == 20
        assert summary["fits"] == 0
        assert summary["cache_misses"] == 0
        assert summary["hit_rate"] == 1.0

    def test_replay_reports_hit_rate(self, tiny_image_zoo, lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        workload = generate_workload(
            tiny_image_zoo, WorkloadConfig(num_queries=30, seed=5))
        summary = replay(service, workload)
        assert summary["queries"] == 30
        assert summary["fits"] <= len(tiny_image_zoo.target_names())
        assert summary["hit_rate"] > 0.5
        assert summary["qps"] > 0
        assert summary["p95_ms"] >= summary["p50_ms"]
