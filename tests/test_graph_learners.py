"""Tests for walks, SGNS, and the four graph learners."""

import numpy as np
import pytest

from repro.graph import (
    GAT,
    GraphSAGE,
    GRAPH_LEARNERS,
    LinkExamples,
    ModelDatasetGraph,
    Node2Vec,
    SkipGramConfig,
    WalkConfig,
    generate_walks,
    get_graph_learner,
    train_skipgram,
)


def barbell_graph():
    """Two dense clusters joined by one bridge — clear community structure."""
    g = ModelDatasetGraph()
    left = [f"m{i}" for i in range(4)]
    right = [f"d{i}" for i in range(4)]
    for n in left:
        g.add_node(n, "model")
    for n in right:
        g.add_node(n, "dataset")
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_edge(left[i], right[j], 1.0, "accuracy")
            g.add_edge(left[j], right[i], 1.0, "accuracy")
    g.add_edge(left[0], right[0], 0.1, "transferability")
    return g


def two_cluster_graph():
    g = ModelDatasetGraph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(5)]
    for n in a + b:
        g.add_node(n, "dataset")
    for group in (a, b):
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(group[i], group[j], 1.0, "similarity")
    g.add_edge(a[0], b[0], 0.2, "similarity")  # weak bridge
    return g


class TestWalks:
    def test_walk_shape(self):
        g = two_cluster_graph()
        walks = generate_walks(g, WalkConfig(num_walks=2, walk_length=10),
                               np.random.default_rng(0))
        assert len(walks) == 2 * g.num_nodes
        assert all(len(w) <= 10 for w in walks)

    def test_walks_follow_edges(self):
        g = two_cluster_graph()
        walks = generate_walks(g, WalkConfig(num_walks=1, walk_length=8),
                               np.random.default_rng(1))
        for walk in walks:
            for u, v in zip(walk[:-1], walk[1:]):
                assert g.has_edge(u, v)

    def test_isolated_node_skipped(self):
        g = two_cluster_graph()
        g.add_node("lonely", "dataset")
        walks = generate_walks(g, WalkConfig(num_walks=1, walk_length=5),
                               np.random.default_rng(2))
        assert all(w[0] != "lonely" for w in walks)

    def test_deterministic_given_rng(self):
        g = two_cluster_graph()
        config = WalkConfig(num_walks=2, walk_length=6)
        w1 = generate_walks(g, config, np.random.default_rng(5))
        w2 = generate_walks(g, config, np.random.default_rng(5))
        assert w1 == w2

    def test_weighted_walks_prefer_heavy_edges(self):
        """Node2Vec+ walks should cross a weak bridge less often."""
        g = two_cluster_graph()
        rng = np.random.default_rng(0)

        def bridge_crossings(weighted):
            config = WalkConfig(num_walks=30, walk_length=12, weighted=weighted)
            walks = generate_walks(g, config, np.random.default_rng(7))
            crossings = 0
            for walk in walks:
                for u, v in zip(walk[:-1], walk[1:]):
                    if {u, v} == {"a0", "b0"}:
                        crossings += 1
            return crossings

        assert bridge_crossings(weighted=True) < bridge_crossings(weighted=False)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkConfig(num_walks=0)
        with pytest.raises(ValueError):
            WalkConfig(p=0.0)


class TestSkipGram:
    def test_embeddings_for_all_nodes(self):
        g = two_cluster_graph()
        walks = generate_walks(g, WalkConfig(num_walks=3, walk_length=10),
                               np.random.default_rng(0))
        emb = train_skipgram(walks, g.nodes(), SkipGramConfig(dim=16, epochs=2),
                             np.random.default_rng(0))
        assert set(emb) == set(g.nodes())
        assert all(v.shape == (16,) for v in emb.values())

    def test_cluster_structure_captured(self):
        """Nodes in the same cluster should embed closer than across."""
        g = two_cluster_graph()
        walks = generate_walks(g, WalkConfig(num_walks=20, walk_length=10),
                               np.random.default_rng(1))
        emb = train_skipgram(walks, g.nodes(),
                             SkipGramConfig(dim=16, epochs=5),
                             np.random.default_rng(1))

        def cos(u, v):
            return float(u @ v / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-12))

        within = np.mean([cos(emb[f"a{i}"], emb[f"a{j}"])
                          for i in range(5) for j in range(i + 1, 5)])
        across = np.mean([cos(emb[f"a{i}"], emb[f"b{j}"])
                          for i in range(5) for j in range(5)])
        assert within > across

    def test_long_training_stays_finite(self):
        """Regression: prolonged SGNS training must not blow up."""
        g = two_cluster_graph()
        walks = generate_walks(g, WalkConfig(num_walks=80, walk_length=10),
                               np.random.default_rng(1))
        emb = train_skipgram(walks, g.nodes(),
                             SkipGramConfig(dim=8, epochs=30),
                             np.random.default_rng(1))
        assert all(np.isfinite(v).all() for v in emb.values())

    def test_empty_walks_yield_random_init(self):
        emb = train_skipgram([], ["x", "y"], SkipGramConfig(dim=8),
                             np.random.default_rng(0))
        assert set(emb) == {"x", "y"}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SkipGramConfig(dim=0)
        with pytest.raises(ValueError):
            SkipGramConfig(epochs=0)


class TestLearnerRegistry:
    def test_registry_names(self):
        assert set(GRAPH_LEARNERS) == {"node2vec", "node2vec+", "graphsage", "gat"}

    def test_get_graph_learner(self):
        learner = get_graph_learner("node2vec", dim=16)
        assert isinstance(learner, Node2Vec)
        assert learner.dim == 16

    def test_unknown_learner(self):
        with pytest.raises(KeyError):
            get_graph_learner("gcn9000")

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Node2Vec(dim=0)


@pytest.mark.parametrize("name", ["node2vec", "node2vec+", "graphsage", "gat"])
class TestAllLearners:
    def _graph_with_features(self):
        g = barbell_graph()
        rng = np.random.default_rng(0)
        for node in g.nodes():
            g.node_features[node] = rng.normal(size=6)
        links = LinkExamples(
            positive=[("m0", "d1"), ("m1", "d2")],
            negative=[("m3", "d0")],
        )
        return g, links

    def test_embeds_every_node(self, name):
        g, links = self._graph_with_features()
        emb = get_graph_learner(name, dim=12, seed=0).embed(g, links)
        assert set(emb) == set(g.nodes())
        assert all(v.shape == (12,) for v in emb.values())
        assert all(np.isfinite(v).all() for v in emb.values())

    def test_deterministic(self, name):
        g, links = self._graph_with_features()
        e1 = get_graph_learner(name, dim=8, seed=3).embed(g, links)
        e2 = get_graph_learner(name, dim=8, seed=3).embed(g, links)
        for node in g.nodes():
            assert np.allclose(e1[node], e2[node])

    def test_seed_changes_embedding(self, name):
        g, links = self._graph_with_features()
        e1 = get_graph_learner(name, dim=8, seed=0).embed(g, links)
        e2 = get_graph_learner(name, dim=8, seed=1).embed(g, links)
        assert any(not np.allclose(e1[n], e2[n]) for n in g.nodes())


class TestGNNOnZooGraph:
    def test_gnn_learners_on_real_graph(self, tiny_image_zoo):
        from repro.graph import build_graph

        graph, links = build_graph(tiny_image_zoo)
        for cls in (GraphSAGE, GAT):
            emb = cls(dim=16, seed=0, epochs=30).embed(graph, links)
            assert set(emb) == set(graph.nodes())
            assert all(np.isfinite(v).all() for v in emb.values())

    def test_link_predictor_separates_labels(self, tiny_image_zoo):
        """After training, positive pairs should outscore negatives on avg."""
        from repro.graph import build_graph

        graph, links = build_graph(tiny_image_zoo)
        emb = GraphSAGE(dim=16, seed=0, epochs=120).embed(graph, links)

        def score(pair):
            return float(emb[pair[0]] @ emb[pair[1]])

        pos = np.mean([score(p) for p in links.positive])
        neg = np.mean([score(p) for p in links.negative])
        assert pos > neg
