"""Tests for the prediction models: LR, CART, RF, gradient boosting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    PREDICTORS,
    RandomForestRegressor,
    get_predictor,
)


def linear_data(n=120, d=5, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = x @ w + 1.5 + noise * rng.normal(size=n)
    return x, y, w


def step_data(n=200, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.where(x[:, 0] > 0.3, 2.0, -1.0) + 0.05 * rng.normal(size=n)
    return x, y


class TestRegistry:
    def test_aliases(self):
        assert set(PREDICTORS) == {"lr", "rf", "xgb", "tree"}

    def test_get_predictor(self):
        assert isinstance(get_predictor("lr"), LinearRegression)
        assert isinstance(get_predictor("rf", n_estimators=5),
                          RandomForestRegressor)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_predictor("catboost")


class TestLinearRegression:
    def test_recovers_linear_function(self):
        x, y, _ = linear_data(noise=0.0)
        model = LinearRegression(alpha=1e-9)
        preds = model.fit(x, y).predict(x)
        assert np.allclose(preds, y, atol=1e-6)

    def test_intercept_learned(self):
        x = np.zeros((50, 2))
        y = np.full(50, 3.7)
        model = LinearRegression().fit(x, y)
        assert model.predict(np.zeros((1, 2)))[0] == pytest.approx(3.7)

    def test_handles_collinear_features(self):
        rng = np.random.default_rng(0)
        col = rng.normal(size=(80, 1))
        x = np.hstack([col, col, col])  # perfectly collinear
        y = col[:, 0] * 2.0
        preds = LinearRegression().fit(x, y).predict(x)
        assert np.corrcoef(preds, y)[0, 1] > 0.999

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_feature_count_check(self):
        x, y, _ = linear_data()
        model = LinearRegression().fit(x, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 3)))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LinearRegression(alpha=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))


class TestDecisionTree:
    def test_learns_step_function(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        preds = tree.predict(x)
        assert ((preds > 0.5) == (y > 0.5)).mean() > 0.95

    def test_respects_max_depth(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_depth_one_is_stump(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert tree.num_leaves() <= 2

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(30, 4))
        tree = DecisionTreeRegressor().fit(x, np.ones(30))
        assert tree.num_leaves() == 1
        assert np.allclose(tree.predict(x), 1.0)

    def test_min_samples_leaf(self):
        x, y = step_data(n=40)
        tree = DecisionTreeRegressor(max_depth=8, min_samples_leaf=10).fit(x, y)
        # with a leaf floor of 10 on 40 points, at most 4 leaves
        assert tree.num_leaves() <= 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_bad_max_features_type(self):
        x, y = step_data(n=30)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeRegressor(max_features="log9").fit(x, y)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_predictions_within_target_range(self, seed):
        """Property: tree predictions are convex combinations of y."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(40, 3))
        y = rng.normal(size=40) * rng.uniform(0.1, 5)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        preds = tree.predict(rng.normal(size=(20, 3)))
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9


class TestRandomForest:
    def test_fits_nonlinear_function(self):
        x, y = step_data()
        forest = RandomForestRegressor(n_estimators=30, max_depth=4, seed=0)
        preds = forest.fit(x, y).predict(x)
        assert np.corrcoef(preds, y)[0, 1] > 0.9

    def test_deterministic_given_seed(self):
        x, y = step_data()
        p1 = RandomForestRegressor(n_estimators=10, seed=4).fit(x, y).predict(x)
        p2 = RandomForestRegressor(n_estimators=10, seed=4).fit(x, y).predict(x)
        assert np.allclose(p1, p2)

    def test_seed_changes_predictions(self):
        x, y = step_data()
        p1 = RandomForestRegressor(n_estimators=5, seed=0).fit(x, y).predict(x)
        p2 = RandomForestRegressor(n_estimators=5, seed=1).fit(x, y).predict(x)
        assert not np.allclose(p1, p2)

    def test_averaging_reduces_variance(self):
        """Forest test error should beat the average single-tree error."""
        rng = np.random.default_rng(5)
        x = rng.uniform(-2, 2, size=(150, 4))
        y = np.sin(2 * x[:, 0]) + 0.3 * rng.normal(size=150)
        x_test = rng.uniform(-2, 2, size=(100, 4))
        y_test = np.sin(2 * x_test[:, 0])

        forest = RandomForestRegressor(n_estimators=40, max_depth=6, seed=0)
        forest.fit(x, y)
        forest_mse = ((forest.predict(x_test) - y_test) ** 2).mean()
        tree_mses = [((t.predict(x_test) - y_test) ** 2).mean()
                     for t in forest.trees_]
        assert forest_mse < np.mean(tree_mses)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestGradientBoosting:
    def test_fits_nonlinear_function(self):
        x, y = step_data()
        model = GradientBoostingRegressor(n_estimators=50, max_depth=3, seed=0)
        preds = model.fit(x, y).predict(x)
        assert np.corrcoef(preds, y)[0, 1] > 0.95

    def test_train_error_decreases(self):
        x, y = step_data()
        model = GradientBoostingRegressor(n_estimators=40, max_depth=2,
                                          subsample=1.0, seed=0).fit(x, y)
        errors = model.staged_train_error(x, y)
        assert errors[-1] < errors[0]
        # broadly monotone: tail error below the first-quarter error
        assert errors[-1] <= errors[len(errors) // 4]

    def test_single_tree_equals_shrunk_stump(self):
        x, y = step_data()
        model = GradientBoostingRegressor(n_estimators=1, max_depth=1,
                                          learning_rate=0.5, subsample=1.0,
                                          seed=0).fit(x, y)
        preds = model.predict(x)
        assert len(np.unique(preds.round(9))) <= 2  # stump + base

    def test_deterministic(self):
        x, y = step_data()
        m1 = GradientBoostingRegressor(n_estimators=20, seed=7).fit(x, y)
        m2 = GradientBoostingRegressor(n_estimators=20, seed=7).fit(x, y)
        assert np.allclose(m1.predict(x), m2.predict(x))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((1, 2)))


class TestAllPredictorsInterface:
    @pytest.mark.parametrize("name,kwargs", [
        ("lr", {}),
        ("rf", {"n_estimators": 10}),
        ("xgb", {"n_estimators": 20}),
    ])
    def test_fit_predict_roundtrip(self, name, kwargs):
        x, y, _ = linear_data(n=60)
        model = get_predictor(name, **kwargs)
        preds = model.fit(x, y).predict(x)
        assert preds.shape == y.shape
        assert np.isfinite(preds).all()
        # anything reasonable correlates strongly on its own training data
        assert np.corrcoef(preds, y)[0, 1] > 0.5
