"""The docs toolchain: protocol renderer, link checker, CLI entry points."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.docs import (
    check_links,
    check_protocol_doc,
    render_protocol_doc,
    write_protocol_doc,
)
from repro.docs.links import cli_subcommands, doc_files
from repro.docs.protocol import PROTOCOL_DOC_PATH, SNAPSHOT_PATH
from repro.fleet import wire
from repro.store import ZooCatalog

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestProtocolDoc:
    def test_render_covers_every_message_and_frame(self):
        doc = render_protocol_doc(REPO_ROOT)
        snapshot = json.loads(
            (REPO_ROOT / SNAPSHOT_PATH).read_text(encoding="utf-8"))
        for message in snapshot["messages"]:
            assert f"### `{message}`" in doc
        for name in wire._FRAME_NAMES.values():
            assert f"| `{name}` |" in doc
        assert str(wire.WIRE_VERSION) in doc

    def test_committed_doc_is_fresh(self):
        # the same gate CI runs: a stale docs/protocol.md fails here first
        assert check_protocol_doc(REPO_ROOT) == []

    def test_check_reports_missing_and_stale(self, tmp_path):
        root = tmp_path
        (root / "benchmarks/baselines").mkdir(parents=True)
        (root / SNAPSHOT_PATH).write_text(
            (REPO_ROOT / SNAPSHOT_PATH).read_text(encoding="utf-8"),
            encoding="utf-8")
        problems = check_protocol_doc(root)
        assert problems and "missing" in problems[0]

        write_protocol_doc(root)
        assert check_protocol_doc(root) == []

        doc = root / PROTOCOL_DOC_PATH
        doc.write_text(doc.read_text(encoding="utf-8") + "\ndrift\n",
                       encoding="utf-8")
        problems = check_protocol_doc(root)
        assert problems and "stale" in problems[0]


class TestLinkChecker:
    def test_repo_docs_are_clean(self):
        assert check_links(REPO_ROOT) == []

    def test_doc_files_readme_first(self):
        files = doc_files(REPO_ROOT)
        assert files[0].name == "README.md"
        assert any(f.name == "architecture.md" for f in files)

    def test_cli_subcommands_parsed_from_parser(self):
        commands = cli_subcommands()
        assert {"serve", "migrate-store", "docs", "registry-gc"} <= commands

    def test_broken_relative_link_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "see [missing](docs/nope.md)\n", encoding="utf-8")
        problems = check_links(tmp_path)
        assert len(problems) == 1
        assert "docs/nope.md" in problems[0]

    def test_resolving_link_and_external_links_pass(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs/ok.md").write_text("hi\n", encoding="utf-8")
        (tmp_path / "README.md").write_text(
            "[ok](docs/ok.md) [web](https://example.com) [anchor](#x)\n",
            encoding="utf-8")
        assert check_links(tmp_path) == []

    def test_unknown_cli_subcommand_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "```sh\npython -m repro frobnicate --fast\n```\n",
            encoding="utf-8")
        problems = check_links(tmp_path)
        assert len(problems) == 1
        assert "frobnicate" in problems[0]

    def test_cli_outside_fences_ignored(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "prose mentioning repro frobnicate is fine\n", encoding="utf-8")
        assert check_links(tmp_path) == []


class TestDocsCli:
    def test_docs_requires_a_mode(self, capsys):
        assert main(["docs"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_docs_check_passes_on_repo(self, capsys):
        assert main(["docs", "--protocol", "--check", "--check-links",
                     "--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_docs_check_fails_on_drift(self, tmp_path, capsys):
        (tmp_path / "benchmarks/baselines").mkdir(parents=True)
        (tmp_path / SNAPSHOT_PATH).write_text(
            (REPO_ROOT / SNAPSHOT_PATH).read_text(encoding="utf-8"),
            encoding="utf-8")
        assert main(["docs", "--protocol", "--check",
                     "--root", str(tmp_path)]) == 1
        assert "missing" in capsys.readouterr().err

    def test_docs_protocol_writes(self, tmp_path, capsys):
        (tmp_path / "benchmarks/baselines").mkdir(parents=True)
        (tmp_path / SNAPSHOT_PATH).write_text(
            (REPO_ROOT / SNAPSHOT_PATH).read_text(encoding="utf-8"),
            encoding="utf-8")
        assert main(["docs", "--protocol", "--root", str(tmp_path)]) == 0
        assert (tmp_path / PROTOCOL_DOC_PATH).exists()


class TestMigrateStoreCli:
    def write_catalog(self, tmp_path) -> Path:
        cat = ZooCatalog()
        cat.add_dataset(dataset_id="d1", modality="image", num_samples=10,
                        num_classes=2, input_dim=8, is_target=True)
        cat.record_history("m1", "d1", 0.5)
        path = tmp_path / "catalog.json"
        cat.save(path)
        return path

    def test_migrate_store_explicit_paths(self, tmp_path, capsys):
        catalog = self.write_catalog(tmp_path)
        db = tmp_path / "catalog.db"
        assert main(["migrate-store", "--catalog", str(catalog),
                     "--db", str(db), "--no-registry"]) == 0
        out = capsys.readouterr().out
        assert db.exists()
        assert "history" in out

    def test_migrate_store_idempotent(self, tmp_path, capsys):
        catalog = self.write_catalog(tmp_path)
        db = tmp_path / "catalog.db"
        args = ["migrate-store", "--catalog", str(catalog), "--db", str(db),
                "--no-registry"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_migrate_store_nothing_to_do(self, tmp_path, capsys):
        assert main(["migrate-store",
                     "--catalog", str(tmp_path / "absent.json"),
                     "--db", str(tmp_path / "catalog.db"),
                     "--no-registry"]) == 2
        assert "does not exist" in capsys.readouterr().err
