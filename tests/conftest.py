"""Shared fixtures.

The expensive fixture here is the session-scoped small model zoo: building
it means genuinely pre-training and fine-tuning dozens of small networks,
so tests share one build per modality.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_image_zoo():
    """A miniature image-modality zoo shared across integration tests."""
    from repro.zoo import ZooConfig, build_zoo

    config = ZooConfig.tiny(modality="image", seed=7)
    return build_zoo(config)


@pytest.fixture(scope="session")
def tiny_text_zoo():
    """A miniature text-modality zoo shared across integration tests."""
    from repro.zoo import ZooConfig, build_zoo

    config = ZooConfig.tiny(modality="text", seed=11)
    return build_zoo(config)
