"""Integration tests: the TransferGraph pipeline, evaluation, baselines."""

import numpy as np
import pytest

from repro.baselines import AmazonLR, FeatureBasedStrategy, RandomSelection
from repro.core import (
    FeatureSet,
    LooEvaluation,
    TargetResult,
    TransferGraph,
    TransferGraphConfig,
    evaluate_strategy,
    top_k_accuracy,
)


def tg_config(**overrides):
    defaults = dict(predictor="lr", graph_learner="node2vec",
                    embedding_dim=8, features=FeatureSet.everything())
    defaults.update(overrides)
    return TransferGraphConfig(**defaults)


class TestTransferGraphPipeline:
    def test_fit_produces_fitted_state(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        fitted = TransferGraph(tg_config()).fit(zoo, target)
        assert fitted.target == target
        assert fitted.graph_stats["num_nodes"] == \
            len(zoo.dataset_names()) + len(zoo.model_ids())
        assert fitted.feature_names

    def test_scores_cover_all_models(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        scores = TransferGraph(tg_config()).scores_for_target(
            zoo, zoo.target_names()[0])
        assert set(scores) == set(zoo.model_ids())
        assert all(np.isfinite(v) for v in scores.values())

    def test_rank_models_sorted(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        ranking = TransferGraph(tg_config()).rank_models(
            zoo, zoo.target_names()[0])
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_deterministic(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        s1 = TransferGraph(tg_config(seed=5)).scores_for_target(zoo, target)
        s2 = TransferGraph(tg_config(seed=5)).scores_for_target(zoo, target)
        assert s1 == s2

    def test_graph_only_variant_runs(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        config = tg_config(features=FeatureSet.graph_only())
        scores = TransferGraph(config).scores_for_target(
            zoo, zoo.target_names()[0])
        assert len(scores) == len(zoo.model_ids())

    def test_all_predictors_run(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        for predictor in ("lr", "rf", "xgb"):
            scores = TransferGraph(tg_config(predictor=predictor)) \
                .scores_for_target(zoo, target)
            assert len(scores) == len(zoo.model_ids())

    def test_all_graph_learners_run(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        for learner in ("node2vec", "node2vec+", "graphsage", "gat"):
            scores = TransferGraph(tg_config(graph_learner=learner)) \
                .scores_for_target(zoo, target)
            assert len(scores) == len(zoo.model_ids())

    def test_unknown_target_raises(self, tiny_image_zoo):
        with pytest.raises(KeyError):
            TransferGraph(tg_config()).fit(tiny_image_zoo, "nonexistent")


class TestEvaluation:
    def test_evaluate_strategy_structure(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        ev = evaluate_strategy(RandomSelection(seed=1), zoo)
        assert isinstance(ev, LooEvaluation)
        assert set(ev.results) == set(zoo.target_names())
        assert -1.0 <= ev.average_correlation() <= 1.0

    def test_correlations_match_results(self, tiny_image_zoo):
        ev = evaluate_strategy(RandomSelection(seed=2), tiny_image_zoo)
        for target, corr in ev.correlations().items():
            assert corr == ev.results[target].correlation

    def test_top_k_accuracy_perfect_strategy(self, tiny_image_zoo):
        """Scoring by the ground truth itself maximises top-k accuracy."""
        zoo = tiny_image_zoo
        target = zoo.target_names()[0]
        ids, truth = zoo.ground_truth(target)
        oracle = dict(zip(ids, truth))
        k = 3
        best = np.sort(truth)[-k:].mean()
        assert top_k_accuracy(zoo, oracle, target, k=k) == pytest.approx(best)

    def test_target_result_top_k(self):
        result = TargetResult(
            target="d", correlation=0.5,
            scores={"a": 0.9, "b": 0.1, "c": 0.5},
            truth={"a": 0.8, "b": 0.2, "c": 0.6},
        )
        assert result.top_k_accuracy(k=2) == pytest.approx((0.8 + 0.6) / 2)

    def test_evaluate_subset_of_targets(self, tiny_image_zoo):
        targets = tiny_image_zoo.target_names()[:2]
        ev = evaluate_strategy(RandomSelection(), tiny_image_zoo, targets=targets)
        assert set(ev.results) == set(targets)

    def test_empty_targets_rejected(self, tiny_image_zoo):
        with pytest.raises(ValueError):
            evaluate_strategy(RandomSelection(), tiny_image_zoo, targets=[])


class TestBaselines:
    def test_random_deterministic_per_seed(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        t = zoo.target_names()[0]
        assert RandomSelection(7).scores_for_target(zoo, t) == \
            RandomSelection(7).scores_for_target(zoo, t)
        assert RandomSelection(7).scores_for_target(zoo, t) != \
            RandomSelection(8).scores_for_target(zoo, t)

    def test_feature_based_uses_catalog_cache(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        t = zoo.target_names()[0]
        strategy = FeatureBasedStrategy("logme")
        first = strategy.scores_for_target(zoo, t)
        # second call must hit the catalog (same values)
        second = strategy.scores_for_target(zoo, t)
        assert first == second

    def test_feature_based_unknown_metric(self):
        with pytest.raises(KeyError):
            FeatureBasedStrategy("sorcery")

    def test_amazon_lr_variants(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        t = zoo.target_names()[0]
        for variant, name in (("basic", "LR"), ("all", "LR{all}"),
                              ("all+logme", "LR{all,LogME}")):
            strategy = AmazonLR(variant)
            assert strategy.name == name
            scores = strategy.scores_for_target(zoo, t)
            assert set(scores) == set(zoo.model_ids())

    def test_amazon_lr_unknown_variant(self):
        with pytest.raises(ValueError):
            AmazonLR("super")

    def test_basic_lr_ranking_nearly_target_independent(self, tiny_image_zoo):
        """Metadata-only LR produces near-identical orderings per target.

        Model features do not vary with the target; only the LOO training
        set does, so the learned coefficients (and thus rankings) may
        shift slightly — but the orderings must stay strongly rank-
        correlated.
        """
        from repro.utils import spearman_correlation

        zoo = tiny_image_zoo
        strategy = AmazonLR("basic")
        t1, t2 = zoo.target_names()[:2]
        s1 = strategy.scores_for_target(zoo, t1)
        s2 = strategy.scores_for_target(zoo, t2)
        ids = sorted(s1)
        rho = spearman_correlation([s1[m] for m in ids], [s2[m] for m in ids])
        assert rho > 0.5


class TestHeadlineShape:
    """The paper's qualitative result on the tiny test zoo.

    Thresholds are intentionally loose — the tiny zoo has only 3 targets —
    but the ordering random < informed must hold.
    """

    def test_informed_strategies_beat_random(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        random_corr = evaluate_strategy(RandomSelection(), zoo) \
            .average_correlation()
        tg_corr = evaluate_strategy(
            TransferGraph(tg_config(predictor="lr")), zoo).average_correlation()
        assert tg_corr > random_corr
