"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "tiny", "rank", "dtd", "--top", "3"])
        assert args.command == "rank"
        assert args.target == "dtd"
        assert args.top == 3
        assert args.scale == "tiny"

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.modality == "image"
        assert args.predictor == "xgb"

    def test_rejects_bad_modality(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--modality", "audio", "stats"])


class TestCommands:
    """End-to-end CLI runs on the tiny preset (uses the shared cache)."""

    ARGS = ["--scale", "tiny", "--seed", "7"]

    def test_build_zoo(self, capsys):
        assert main(self.ARGS + ["build-zoo"]) == 0
        out = capsys.readouterr().out
        assert "zoo ready" in out

    def test_stats(self, capsys):
        assert main(self.ARGS + ["stats"]) == 0
        out = capsys.readouterr().out
        assert "num_dd_edges" in out
        assert "link examples" in out

    def test_rank_unknown_target(self, capsys):
        assert main(self.ARGS + ["rank", "not_a_dataset"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_rank_known_target(self, capsys):
        assert main(self.ARGS + ["rank", "caltech101", "--top", "2",
                                 "--predictor", "lr"]) == 0
        out = capsys.readouterr().out
        assert "top 2 models for caltech101" in out
