"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "tiny", "rank", "dtd", "--top", "3"])
        assert args.command == "rank"
        assert args.target == "dtd"
        assert args.top == 3
        assert args.scale == "tiny"

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.modality == "image"
        assert args.predictor == "xgb"

    def test_rejects_bad_modality(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--modality", "audio", "stats"])

    def test_serve_sim_concurrency_arguments(self):
        args = build_parser().parse_args(
            ["serve-sim", "--concurrency", "8", "--max-pending-fits", "2",
             "--partition"])
        assert args.concurrency == 8
        assert args.max_pending_fits == 2
        assert args.partition is True

    def test_serve_sim_concurrency_defaults_serial(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.concurrency == 1
        assert args.partition is False

    def test_serve_sim_rejects_zero_concurrency(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--concurrency", "0"])

    def test_registry_gc_arguments(self, tmp_path):
        args = build_parser().parse_args(
            ["registry-gc", "--registry-dir", str(tmp_path), "--dry-run"])
        assert args.command == "registry-gc"
        assert args.dry_run is True

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0",
             "--namespace", "img=image:tiny",
             "--namespace", "txt=text:tiny",
             "--fit-workers", "4"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.namespaces == [("img", "image", "tiny"),
                                   ("txt", "text", "tiny")]
        assert args.fit_workers == 4

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.namespaces is None
        assert args.warmup is False

    def test_serve_rejects_bad_namespace_specs(self):
        from repro.cli import parse_namespace_spec

        for bad in ("noequals", "name=", "=image", "n=audio",
                    "n=image:huge", "a/b=image", "..=image"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--namespace", bad])
        assert parse_namespace_spec("n=text:tiny") == ("n", "text", "tiny")
        # omitted scale resolves to the global --scale flag at serve time
        assert parse_namespace_spec("n=text") == ("n", "text", None)

    def test_serve_rejects_duplicate_namespace_names(self, capsys):
        assert main(["serve", "--namespace", "a=image:tiny",
                     "--namespace", "a=text:tiny"]) == 2
        assert "duplicate namespace" in capsys.readouterr().err

    def test_rank_rejects_non_positive_top(self):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["rank", "dtd", "--top", bad])


class TestCommands:
    """End-to-end CLI runs on the tiny preset (uses the shared cache)."""

    ARGS = ["--scale", "tiny", "--seed", "7"]

    def test_build_zoo(self, capsys):
        assert main(self.ARGS + ["build-zoo"]) == 0
        out = capsys.readouterr().out
        assert "zoo ready" in out

    def test_stats(self, capsys):
        assert main(self.ARGS + ["stats"]) == 0
        out = capsys.readouterr().out
        assert "num_dd_edges" in out
        assert "link examples" in out

    def test_rank_unknown_target(self, capsys):
        assert main(self.ARGS + ["rank", "not_a_dataset"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_rank_known_target(self, capsys):
        assert main(self.ARGS + ["rank", "caltech101", "--top", "2",
                                 "--predictor", "lr"]) == 0
        out = capsys.readouterr().out
        assert "top 2 models for caltech101" in out

    def test_serve_sim_concurrent(self, capsys, tmp_path):
        assert main(self.ARGS + ["serve-sim", "--queries", "6",
                                 "--predictor", "lr", "--concurrency", "3",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "18 queries over 3 async clients" in out
        assert "coalesced" in out
        assert "peak fit queue" in out

    def test_registry_gc(self, capsys, tmp_path):
        # A junk namespace that no live config can ever match.
        junk = tmp_path / "deadbeefdeadbeefdead" / "sometarget"
        junk.mkdir(parents=True)
        (junk / "meta.json").write_text("{}")
        assert main(self.ARGS + ["registry-gc", "--predictor", "lr",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "namespaces removed      1" in out
        assert not junk.exists()

    def test_registry_gc_spares_other_live_strategies(self, capsys,
                                                      tmp_path):
        """Artifacts warmed under lr must survive a gc run with the
        default (xgb) flags — any servable strategy is live unless
        --only-strategy narrows the sweep."""
        assert main(self.ARGS + ["warmup", "--predictor", "lr",
                                 "--registry-dir", str(tmp_path)]) == 0
        capsys.readouterr()

        assert main(self.ARGS + ["registry-gc",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "servable strategies" in out
        assert "namespaces removed      0" in out
        assert "artifacts kept          3" in out

        assert main(self.ARGS + ["registry-gc", "--only-strategy",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "namespaces removed      1" in out

    def test_registry_gc_dry_run_keeps_files(self, capsys, tmp_path):
        junk = tmp_path / "deadbeefdeadbeefdead" / "sometarget"
        junk.mkdir(parents=True)
        (junk / "meta.json").write_text("{}")
        assert main(self.ARGS + ["registry-gc", "--predictor", "lr",
                                 "--registry-dir", str(tmp_path),
                                 "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert junk.exists()


class TestServeEndToEnd:
    """`repro serve` as a real subprocess, hit over HTTP (the same
    exchange the CI smoke-test step runs)."""

    def test_serve_answers_http(self, tmp_path):
        import json
        import re
        import subprocess
        import sys as _sys
        import urllib.request

        process = subprocess.Popen(
            [_sys.executable, "-m", "repro", "--scale", "tiny", "--seed",
             "7", "serve", "--port", "0", "--predictor", "lr",
             "--namespace", "img=image:tiny",
             "--strategy", "lr:basic", "--strategy", "logme",
             "--registry-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            url = None
            for _ in range(200):           # zoo may build on first run
                line = process.stdout.readline()
                if not line:
                    raise AssertionError("serve exited before listening")
                match = re.search(r"serving on (http://[\d.:]+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url is not None

            with urllib.request.urlopen(f"{url}/v1/healthz", timeout=10) as r:
                assert r.status == 200
                health = json.loads(r.read())
            assert health["status"] == "ok"
            assert health["namespaces"] == ["img"]
            # default first, remaining specs sorted
            assert health["strategies"]["img"] == ["tg:lr,n2v,all",
                                                   "logme", "lr:basic"]

            def rank(strategy=None):
                payload = {"namespace": "img", "target": "caltech101",
                           "top_k": 3}
                if strategy is not None:
                    payload["strategy"] = strategy
                request = urllib.request.Request(
                    f"{url}/v1/rank", data=json.dumps(payload).encode(),
                    method="POST")
                with urllib.request.urlopen(request, timeout=60) as r:
                    assert r.status == 200
                    return json.loads(r.read())

            # Acceptance: three strategy families through one gateway —
            # the TG default (omitted field), an LR baseline, and a
            # transferability-only ranker.
            for strategy in (None, "lr:basic", "logme"):
                ranking = rank(strategy)
                assert ranking["kind"] == "rank_response"
                assert ranking["target"] == "caltech101"
                assert len(ranking["ranking"]) == 3
                assert ranking.get("strategy") == strategy
        finally:
            process.terminate()
            process.wait(timeout=10)


class TestStrategyFlags:
    def test_rank_accepts_strategy_spec(self):
        args = build_parser().parse_args(
            ["--scale", "tiny", "rank", "dtd", "--strategy", "logme"])
        assert args.strategy == "logme"

    def test_rank_rejects_unknown_strategy_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rank", "dtd", "--strategy", "nope"])

    def test_serve_collects_repeatable_strategies(self):
        args = build_parser().parse_args(
            ["serve", "--strategy", "logme", "--strategy", "lr:all+logme",
             "--shed-start", "0.75"])
        assert args.strategies == ["logme", "lr:all+logme"]
        assert args.shed_start == 0.75

    def test_serve_defaults_have_no_extra_strategies(self):
        args = build_parser().parse_args(["serve"])
        assert args.strategies is None
        assert args.shed_start == 1.0

    def test_registry_gc_gateway_flag(self):
        args = build_parser().parse_args(["registry-gc", "--gateway"])
        assert args.gateway is True

    def test_serve_sim_shed_start_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--shed-start", "1.5"])


class TestStrategyCommands:
    """Transferability strategies fit without Stage 2/3, so these runs
    stay cheap even from a cold registry."""

    ARGS = ["--scale", "tiny", "--seed", "7"]

    def test_rank_with_transferability_strategy(self, capsys, tmp_path):
        assert main(self.ARGS + ["rank", "caltech101", "--top", "2",
                                 "--strategy", "logme",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "top 2 models for caltech101 (LogME)" in out

    def test_warmup_with_strategy_writes_score_tables(self, capsys,
                                                      tmp_path):
        assert main(self.ARGS + ["warmup", "--strategy", "random",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(Random, thread executor)" in out
        from repro.serving import ArtifactRegistry
        from repro.strategies import get_strategy

        registry = ArtifactRegistry(tmp_path)
        assert len(registry.targets(get_strategy("random"))) == 3

    def test_serve_sim_with_strategy(self, capsys, tmp_path):
        assert main(self.ARGS + ["serve-sim", "--queries", "6",
                                 "--strategy", "random",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(Random," in out

    def test_registry_gc_gateway_layout(self, capsys, tmp_path):
        # a namespace shard holding one junk fingerprint directory
        junk = tmp_path / "img" / "deadbeefdeadbeefdead" / "sometarget"
        junk.mkdir(parents=True)
        (junk / "meta.json").write_text("{}")
        assert main(self.ARGS + ["registry-gc", "--gateway",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gateway layout" in out
        assert "namespaces removed      1" in out
        assert not junk.exists()
        assert (tmp_path / "img").is_dir()  # shard dir survives


class TestRegistryGCStrategySafety:
    """Regressions: the sweep must never eat servable artifacts."""

    ARGS = ["--scale", "tiny", "--seed", "7"]

    def test_explicit_parameterized_strategy_stays_live(self, capsys,
                                                        tmp_path):
        """random:5 is CLI-servable but not enumerable; naming it via
        --strategy must keep its artifacts through a default sweep."""
        assert main(self.ARGS + ["warmup", "--strategy", "random:5",
                                 "--registry-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["registry-gc", "--strategy", "random:5",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "namespaces removed      0" in out
        assert "artifacts kept          3" in out

    def test_gateway_sweep_never_judges_catalog_staleness(self, capsys,
                                                          tmp_path):
        """Shards may serve different zoos (heterogeneous --namespace),
        so --gateway must keep artifacts whose catalog fingerprint does
        not match the CLI's own zoo."""
        import json

        from repro.serving import ArtifactRegistry, SelectionService
        from repro.strategies import get_strategy
        from repro.zoo import ZooConfig, get_or_build_zoo

        zoo = get_or_build_zoo(ZooConfig.tiny(modality="image", seed=7))
        shard = ArtifactRegistry(tmp_path / "other")
        strategy = get_strategy("random")
        service = SelectionService(zoo, strategy, registry=shard)
        target = zoo.target_names()[0]
        service.warmup([target])
        # Simulate a shard fitted against a different zoo's catalog.
        meta_path = shard.path_for(target, strategy) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["catalog_fingerprint"] = "f" * 20
        meta_path.write_text(json.dumps(meta))

        assert main(self.ARGS + ["registry-gc", "--gateway",
                                 "--registry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "artifacts kept          1" in out
        assert meta_path.exists()


class TestServedEvaluateFlags:
    def test_evaluate_served_arguments(self):
        args = build_parser().parse_args(
            ["evaluate", "--served", "--strategy", "logme",
             "--strategy", "random", "--reference", "logme",
             "--top-k", "5", "--output", "out.json"])
        assert args.served is True
        assert args.strategies == ["logme", "random"]
        assert args.reference == "logme"
        assert args.top_k == 5
        assert str(args.output) == "out.json"

    def test_evaluate_defaults_stay_offline(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.served is False
        assert args.strategies is None
        assert args.reference is None
        assert args.top_k == 3
        assert args.output is None

    def test_evaluate_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--strategy", "nope"])

    def test_serve_fit_budget_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--fit-budget", "logme=16",
             "--fit-budget", "tg:lr,n2v,all=2"])
        assert args.fit_budgets == [("logme", 16), ("tg:lr,n2v,all", 2)]
        assert args.weighted_fit_budgets is False

    def test_serve_weighted_fit_budgets_flag(self):
        args = build_parser().parse_args(["serve", "--weighted-fit-budgets"])
        assert args.weighted_fit_budgets is True
        assert args.fit_budgets is None

    def test_serve_rejects_malformed_fit_budgets(self):
        for bad in ("logme", "logme=", "=3", "logme=zero", "logme=0",
                    "nope=3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--fit-budget", bad])


class TestServedEvaluateCommand:
    """`evaluate --served` end to end on the tiny preset."""

    def test_writes_the_benchmark_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_compare.json"
        assert main(["--scale", "tiny", "--seed", "7", "evaluate",
                     "--served", "--predictor", "lr",
                     "--strategy", "logme", "--strategy", "random",
                     "--top-k", "3", "--output", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "served comparison" in printed
        assert "reference tg:lr,n2v,all" in printed
        assert str(out) in printed

        report = json.loads(out.read_text())
        assert report["benchmark"] == "compare_served"
        assert report["reference"] == "tg:lr,n2v,all"
        assert set(report["strategies"]) == {"tg:lr,n2v,all", "logme",
                                             "random"}
        for row in report["strategies"].values():
            assert row["targets_shed"] == 0
            assert row["targets_ok"] == len(report["targets"])
        # the reference correlates perfectly with itself; weighted
        # budgets give the heavy TG strategy the shallow queue
        reference = report["strategies"]["tg:lr,n2v,all"]
        assert reference["mean_pearson"] == 1.0
        assert reference["mean_top_k_overlap"] == 1.0
        assert reference["fit_budget"] < report["strategies"]["logme"][
            "fit_budget"]
