"""Tests for repro.store — schema validation, table ops, catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Column, Schema, SchemaError, Table, ZooCatalog


def make_schema():
    return Schema(
        name="t",
        columns=[
            Column("id", "str"),
            Column("score", "float"),
            Column("count", "int", required=False, default=0),
            Column("flag", "bool", required=False, default=False),
        ],
        primary_key=("id",),
    )


class TestSchema:
    def test_validate_fills_defaults(self):
        rec = make_schema().validate({"id": "a", "score": 0.5})
        assert rec["count"] == 0
        assert rec["flag"] is False

    def test_int_coerced_to_float(self):
        rec = make_schema().validate({"id": "a", "score": 1})
        assert isinstance(rec["score"], float)

    def test_bool_not_valid_int(self):
        with pytest.raises(SchemaError, match="bool"):
            make_schema().validate({"id": "a", "score": 0.5, "count": True})

    def test_missing_required(self):
        with pytest.raises(SchemaError, match="required"):
            make_schema().validate({"id": "a"})

    def test_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            make_schema().validate({"id": "a", "score": 0.1, "bogus": 1})

    def test_wrong_type(self):
        with pytest.raises(SchemaError, match="expected float"):
            make_schema().validate({"id": "a", "score": "high"})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema("x", [Column("a", "int"), Column("a", "str")])

    def test_bad_primary_key_rejected(self):
        with pytest.raises(SchemaError, match="primary key"):
            Schema("x", [Column("a", "int")], primary_key=("b",))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError, match="dtype"):
            Column("a", "decimal")


class TestTable:
    def make(self):
        return Table(make_schema())

    def test_insert_get(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        assert t.get("a")["score"] == 0.9

    def test_duplicate_key_rejected(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        with pytest.raises(SchemaError, match="duplicate"):
            t.insert({"id": "a", "score": 0.1})

    def test_upsert_replaces(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        t.insert({"id": "a", "score": 0.1}, upsert=True)
        assert t.get("a")["score"] == 0.1
        assert len(t) == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            self.make().get("nope")

    def test_get_or_none(self):
        assert self.make().get_or_none("nope") is None

    def test_returned_rows_are_copies(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        row = t.get("a")
        row["score"] = 0.0
        assert t.get("a")["score"] == 0.9

    def test_delete(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        t.delete("a")
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.delete("a")

    def test_filter_equality(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9, "count": 1})
        t.insert({"id": "b", "score": 0.8, "count": 1})
        t.insert({"id": "c", "score": 0.7, "count": 2})
        assert [r["id"] for r in t.filter(count=1)] == ["a", "b"]

    def test_filter_with_index_matches_scan(self):
        t = self.make()
        for i in range(20):
            t.insert({"id": f"r{i}", "score": float(i % 3), "count": i % 4})
        scan = t.filter(count=2)
        t.add_index("count")
        indexed = t.filter(count=2)
        assert scan == indexed

    def test_index_maintained_on_upsert_and_delete(self):
        t = self.make()
        t.add_index("count")
        t.insert({"id": "a", "score": 0.5, "count": 1})
        t.insert({"id": "a", "score": 0.5, "count": 2}, upsert=True)
        assert t.filter(count=1) == []
        assert len(t.filter(count=2)) == 1
        t.delete("a")
        assert t.filter(count=2) == []

    def test_filter_predicate(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        t.insert({"id": "b", "score": 0.2})
        rows = t.filter(lambda r: r["score"] > 0.5)
        assert [r["id"] for r in rows] == ["a"]

    def test_filter_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self.make().filter(bogus=1)

    def test_distinct(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9, "count": 2})
        t.insert({"id": "b", "score": 0.8, "count": 2})
        t.insert({"id": "c", "score": 0.8, "count": 5})
        assert t.distinct("count") == [2, 5]

    def test_contains(self):
        t = self.make()
        t.insert({"id": "a", "score": 0.9})
        assert ("a",) in t
        assert ("b",) not in t

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=5),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=1, max_size=30, unique_by=lambda x: x[0]))
    def test_roundtrip_property(self, rows):
        t = self.make()
        for rid, score in rows:
            t.insert({"id": rid, "score": score})
        assert len(t) == len(rows)
        for rid, score in rows:
            assert t.get(rid)["score"] == score


class TestZooCatalog:
    def populate(self) -> ZooCatalog:
        cat = ZooCatalog()
        cat.add_model(model_id="m1", architecture="vit-s", family="vit",
                      modality="image", pretrain_dataset="imagenet",
                      pretrain_accuracy=0.8, num_params=1000, memory_mb=4.0,
                      input_shape=32, embedding_dim=16, depth=3)
        cat.add_model(model_id="m2", architecture="resnet-s", family="resnet",
                      modality="image", pretrain_dataset="cifar",
                      pretrain_accuracy=0.7, num_params=2000, memory_mb=8.0,
                      input_shape=32, embedding_dim=16, depth=4)
        cat.add_dataset(dataset_id="d1", modality="image", num_samples=100,
                        num_classes=5, input_dim=32, is_target=True)
        cat.add_dataset(dataset_id="d2", modality="image", num_samples=200,
                        num_classes=2, input_dim=32)
        cat.record_history("m1", "d1", 0.91)
        cat.record_history("m2", "d1", 0.55)
        cat.record_history("m1", "d2", 0.70, method="lora")
        cat.record_transferability("m1", "d1", "logme", 1.2)
        cat.record_similarity("d2", "d1", 0.66)
        return cat

    def test_basic_lookups(self):
        cat = self.populate()
        assert cat.model_ids() == ["m1", "m2"]
        assert cat.dataset_ids() == ["d1", "d2"]
        assert cat.target_dataset_ids() == ["d1"]
        assert cat.get_accuracy("m1", "d1") == 0.91
        assert cat.get_accuracy("m1", "d2") is None
        assert cat.get_accuracy("m1", "d2", method="lora") == 0.70
        assert cat.get_transferability("m1", "d1") == 1.2
        assert cat.get_transferability("m2", "d1") is None

    def test_similarity_symmetric_key(self):
        cat = self.populate()
        assert cat.get_similarity("d1", "d2") == 0.66
        assert cat.get_similarity("d2", "d1") == 0.66

    def test_history_for_dataset(self):
        cat = self.populate()
        rows = cat.history_for_dataset("d1")
        assert {r["model_id"] for r in rows} == {"m1", "m2"}

    def test_accuracy_matrix(self):
        cat = self.populate()
        M = cat.accuracy_matrix(["m1", "m2"], ["d1", "d2"])
        assert M[0, 0] == 0.91
        assert M[1, 0] == 0.55
        assert np.isnan(M[0, 1])

    def test_save_load_round_trip(self, tmp_path):
        cat = self.populate()
        path = tmp_path / "catalog.json"
        cat.save(path)
        loaded = ZooCatalog.load(path)
        assert loaded.stats() == cat.stats()
        assert loaded.get_accuracy("m1", "d1") == 0.91
        assert loaded.get_similarity("d1", "d2") == 0.66

    def test_stats(self):
        stats = self.populate().stats()
        assert stats["models"] == 2
        assert stats["history"] == 3
        assert stats["similarity"] == 1
