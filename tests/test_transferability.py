"""Tests for transferability estimators: invariants and discrimination.

The central property for every estimator: features that separate the
classes well must score higher than features that do not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transferability import (
    ESTIMATORS,
    LEEP,
    TransRate,
    coding_rate,
    get_estimator,
    h_score,
    leep_score,
    log_maximum_evidence,
    nce_score,
    normalise_scores,
    parc_score,
    score_model_on_dataset,
    score_zoo,
    transrate_score,
)


def separable_features(n=120, d=8, classes=3, separation=4.0, seed=0):
    """Features with class means `separation` apart plus unit noise."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, classes, size=n)
    means = rng.normal(0.0, separation, size=(classes, d))
    x = means[y] + rng.normal(size=(n, d))
    return x, y


def noise_features(n=120, d=8, classes=3, seed=1):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.integers(0, classes, size=n)


def softmax(z):
    e = np.exp(z - z.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


class TestSharedValidation:
    @pytest.mark.parametrize("name", ["logme", "parc", "transrate", "hscore"])
    def test_single_class_rejected(self, name):
        est = get_estimator(name)
        x = np.random.default_rng(0).normal(size=(20, 4))
        with pytest.raises(ValueError, match="two classes"):
            est.score(x, np.zeros(20, dtype=int))

    @pytest.mark.parametrize("name", ["logme", "parc", "transrate", "hscore"])
    def test_length_mismatch_rejected(self, name):
        est = get_estimator(name)
        with pytest.raises(ValueError):
            est.score(np.ones((10, 3)), np.zeros(9, dtype=int))

    def test_registry_contents(self):
        assert set(ESTIMATORS) == {"logme", "leep", "nce", "parc",
                                   "transrate", "hscore"}

    def test_unknown_estimator(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            get_estimator("magic")


class TestLogME:
    def test_separable_beats_noise(self):
        xs, ys = separable_features()
        xn, yn = noise_features()
        assert log_maximum_evidence(xs, ys) > log_maximum_evidence(xn, yn)

    def test_finite_on_degenerate_features(self):
        # rank-deficient features: a single informative column repeated
        rng = np.random.default_rng(0)
        col = rng.normal(size=(50, 1))
        x = np.repeat(col, 6, axis=1)
        y = (col[:, 0] > 0).astype(int)
        assert np.isfinite(log_maximum_evidence(x, y))

    def test_monotone_in_separation(self):
        scores = [log_maximum_evidence(*separable_features(separation=s, seed=3))
                  for s in (0.0, 1.0, 4.0)]
        assert scores[0] < scores[1] < scores[2]

    def test_scale_of_scores_reasonable(self):
        x, y = separable_features()
        score = log_maximum_evidence(x, y)
        assert -5.0 < score < 5.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_always_finite(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 80))
        d = int(rng.integers(2, 16))
        x = rng.normal(size=(n, d)) * rng.uniform(0.1, 10)
        y = rng.integers(0, 2, size=n)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        assert np.isfinite(log_maximum_evidence(x, y))


class TestLEEP:
    def test_always_nonpositive(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(100, 7)))
        y = rng.integers(0, 4, size=100)
        assert leep_score(probs, y) <= 0.0

    def test_perfectly_informative_source(self):
        # source class == target class: LEEP approaches 0
        n, k = 200, 4
        y = np.random.default_rng(1).integers(0, k, size=n)
        probs = np.full((n, k), 1e-6)
        probs[np.arange(n), y] = 1.0
        probs /= probs.sum(axis=1, keepdims=True)
        assert leep_score(probs, y) > -0.01

    def test_uninformative_source_scores_entropy(self):
        n, k = 400, 3
        rng = np.random.default_rng(2)
        y = rng.integers(0, k, size=n)
        probs = np.full((n, 5), 0.2)
        # uniform theta -> EEP = empirical P(y) -> LEEP ≈ -H(Y)
        score = leep_score(probs, y)
        assert score == pytest.approx(-np.log(k), abs=0.05)

    def test_informative_beats_uninformative(self):
        n, k = 200, 3
        rng = np.random.default_rng(3)
        y = rng.integers(0, k, size=n)
        informative = np.full((n, k), 1e-3)
        informative[np.arange(n), y] = 1.0
        informative /= informative.sum(axis=1, keepdims=True)
        uniform = np.full((n, 4), 0.25)
        assert leep_score(informative, y) > leep_score(uniform, y)

    def test_requires_probabilities(self):
        with pytest.raises(ValueError, match="sum to 1"):
            leep_score(np.ones((10, 3)), np.zeros(10, dtype=int))

    def test_estimator_requires_source_probs(self):
        with pytest.raises(ValueError, match="source_probs"):
            LEEP().score(np.ones((10, 3)), np.zeros(10, dtype=int))


class TestNCE:
    def test_always_nonpositive(self):
        rng = np.random.default_rng(0)
        z = rng.integers(0, 6, size=300)
        y = rng.integers(0, 3, size=300)
        assert nce_score(z, y) <= 1e-12

    def test_deterministic_mapping_gives_zero(self):
        z = np.array([0, 1, 2, 0, 1, 2] * 10)
        y = z % 2  # fully determined by z
        assert nce_score(z, y) == pytest.approx(0.0, abs=1e-12)

    def test_independent_labels_give_negative_entropy(self):
        rng = np.random.default_rng(1)
        z = rng.integers(0, 2, size=5000)
        y = rng.integers(0, 2, size=5000)
        assert nce_score(z, y) == pytest.approx(-np.log(2), abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nce_score(np.array([]), np.array([]))


class TestPARC:
    def test_bounded(self):
        x, y = separable_features(n=60)
        assert -1.0 <= parc_score(x, y) <= 1.0

    def test_separable_beats_noise(self):
        xs, ys = separable_features(n=80)
        xn, yn = noise_features(n=80)
        assert parc_score(xs, ys) > parc_score(xn, yn)

    def test_subsampling_bounds_cost(self):
        x, y = separable_features(n=1200)
        score = parc_score(x, y, max_samples=100)
        assert np.isfinite(score)

    def test_deterministic_subsample(self):
        x, y = separable_features(n=700)
        assert parc_score(x, y, max_samples=200, seed=5) == \
            parc_score(x, y, max_samples=200, seed=5)


class TestTransRate:
    def test_separable_beats_noise(self):
        xs, ys = separable_features()
        xn, yn = noise_features()
        assert transrate_score(xs, ys) > transrate_score(xn, yn)

    def test_nonnegative_for_gaussian_classes(self):
        x, y = separable_features()
        assert transrate_score(x, y) >= 0.0

    def test_coding_rate_zero_for_empty(self):
        assert coding_rate(np.zeros((0, 4))) == 0.0

    def test_coding_rate_monotone_in_scale(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(50, 4))
        assert coding_rate(2 * z) > coding_rate(z)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            TransRate(eps=0.0)


class TestHScore:
    def test_separable_beats_noise(self):
        xs, ys = separable_features()
        xn, yn = noise_features()
        assert h_score(xs, ys) > h_score(xn, yn)

    def test_nonnegative(self):
        x, y = noise_features()
        assert h_score(x, y) >= -1e-9

    def test_bounded_by_feature_dim(self):
        x, y = separable_features(d=6)
        assert h_score(x, y) <= 6.0 + 1e-6


class TestNormaliseScores:
    def test_range(self):
        out = normalise_scores([1.0, 5.0, 3.0])
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_constant_maps_to_half(self):
        assert np.allclose(normalise_scores([2.0, 2.0]), 0.5)

    def test_preserves_order(self):
        raw = np.array([3.0, -1.0, 10.0])
        out = normalise_scores(raw)
        assert np.argsort(out).tolist() == np.argsort(raw).tolist()


class TestZooScoring:
    def test_score_model_on_dataset(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        value = score_model_on_dataset(zoo, zoo.model_ids()[0],
                                       zoo.target_names()[0], "logme")
        assert np.isfinite(value)

    def test_score_zoo_records_catalog(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        scores = score_zoo(zoo, metric="logme")
        n = len(zoo.model_ids()) * len(zoo.target_names())
        assert len(scores) == n
        sample_key = next(iter(scores))
        recorded = zoo.catalog.get_transferability(*sample_key, metric="logme")
        assert recorded == pytest.approx(scores[sample_key])

    def test_leep_via_zoo(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        value = score_model_on_dataset(zoo, zoo.model_ids()[0],
                                       zoo.target_names()[0], "leep")
        assert value <= 0.0

    def test_logme_correlates_with_finetune_accuracy(self, tiny_image_zoo):
        """LogME should carry *some* signal about fine-tuning outcomes.

        We don't demand a strong correlation on a tiny zoo — only that the
        average over targets is not clearly anti-correlated.
        """
        zoo = tiny_image_zoo
        from repro.utils import pearson_correlation

        corrs = []
        for target in zoo.target_names():
            ids, truth = zoo.ground_truth(target)
            preds = [score_model_on_dataset(zoo, m, target, "logme") for m in ids]
            corrs.append(pearson_correlation(truth, np.array(preds)))
        assert np.mean(corrs) > -0.2
