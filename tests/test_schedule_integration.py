"""Integration tests: schedulers driving real training loops."""

import numpy as np
from repro.nn import (
    CyclicalLR,
    LinearDecayLR,
    Linear,
    SGD,
    AdamW,
    Sequential,
    Tanh,
    Tensor,
    cross_entropy,
)


def make_problem(seed=0, n=200, d=6, k=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=(d, k))
    y = (x @ w).argmax(axis=1)
    return x, y


class TestScheduledTraining:
    def _train(self, scheduler_factory, steps=120, seed=1):
        x, y = make_problem(seed)
        rng = np.random.default_rng(seed)
        model = Sequential(Linear(6, 16, rng=rng), Tanh(), Linear(16, 3, rng=rng))
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        sched = scheduler_factory(opt)
        losses = []
        for _ in range(steps):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()
            losses.append(loss.item())
        return losses

    def test_cyclical_schedule_training_converges(self):
        losses = self._train(
            lambda opt: CyclicalLR(opt, base_lr=1e-3, max_lr=5e-2,
                                   step_size_up=20))
        assert losses[-1] < 0.5 * losses[0]

    def test_linear_decay_training_converges(self):
        losses = self._train(
            lambda opt: LinearDecayLR(opt, initial_lr=5e-2, total_steps=120))
        assert losses[-1] < 0.5 * losses[0]

    def test_decayed_lr_freezes_training(self):
        """Once LinearDecayLR reaches zero, parameters stop moving."""
        x, y = make_problem(2)
        rng = np.random.default_rng(2)
        model = Sequential(Linear(6, 8, rng=rng), Tanh(), Linear(8, 3, rng=rng))
        opt = SGD(model.parameters(), lr=0.1)
        sched = LinearDecayLR(opt, initial_lr=0.05, total_steps=5)
        for _ in range(10):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()
        snapshot = model.state_dict()
        loss = cross_entropy(model(Tensor(x)), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        for key, value in model.state_dict().items():
            assert np.allclose(value, snapshot[key])

    def test_adamw_with_cyclical_schedule(self):
        x, y = make_problem(3)
        rng = np.random.default_rng(3)
        model = Sequential(Linear(6, 8, rng=rng), Tanh(), Linear(8, 3, rng=rng))
        opt = AdamW(model.parameters(), lr=1e-2, weight_decay=0.0)
        sched = CyclicalLR(opt, base_lr=1e-4, max_lr=2e-2, step_size_up=10)
        first = cross_entropy(model(Tensor(x)), y).item()
        for _ in range(80):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            sched.step()
        assert cross_entropy(model(Tensor(x)), y).item() < first
