"""Tests for layers, losses, optimizers, schedulers, and LoRA."""

import numpy as np
import pytest

from repro.nn import (
    AdamW,
    ConstantLR,
    CyclicalLR,
    Dropout,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    LinearDecayLR,
    LoRALinear,
    ReLU,
    SGD,
    Sequential,
    Tanh,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    inject_lora,
    lora_parameters,
    mse_loss,
)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(8, 4, rng=rng)
        out = layer(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 4)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError):
            Linear(3, 3, init_scheme="mystery")

    def test_deterministic_init_per_rng(self):
        a = Linear(4, 4, rng=np.random.default_rng(0))
        b = Linear(4, 4, rng=np.random.default_rng(0))
        assert np.allclose(a.weight.data, b.weight.data)


class TestModuleProtocol:
    def _model(self):
        r = np.random.default_rng(0)
        return Sequential(Linear(4, 8, rng=r), ReLU(), Linear(8, 2, rng=r))

    def test_parameter_discovery(self):
        model = self._model()
        assert len(model.parameters()) == 4  # 2 weights + 2 biases

    def test_named_parameters_unique(self):
        names = [n for n, _ in self._model().named_parameters()]
        assert len(names) == len(set(names))

    def test_num_parameters(self):
        model = self._model()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_round_trip(self):
        model = self._model()
        state = model.state_dict()
        other = self._model()
        for p in other.parameters():
            p.data += 1.0
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(model(x).numpy(), other(x).numpy())

    def test_load_state_dict_rejects_mismatch(self):
        model = self._model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_train_eval_toggles_all_modules(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestDropout:
    def test_identity_in_eval(self):
        drop = Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = np.ones((4, 4))
        assert np.allclose(drop(Tensor(x)).numpy(), x)

    def test_masks_in_train(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100)))).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_scaling_preserves_expectation(self):
        drop = Dropout(0.3, rng=np.random.default_rng(1))
        out = drop(Tensor(np.ones((200, 200)))).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_rejects_p_one(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(6)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(10, 6))
        out = ln(Tensor(x)).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.eye(3) * 100.0)
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0, 1, 2]))

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_bce_with_logits_midpoint(self):
        logits = Tensor(np.zeros(4))
        targets = np.array([0.0, 1.0, 0.0, 1.0])
        assert binary_cross_entropy_with_logits(logits, targets).item() == \
            pytest.approx(np.log(2))

    def test_bce_extreme_logits_finite(self):
        logits = Tensor(np.array([50.0, -50.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestOptimizers:
    def _quadratic_min(self, make_opt, steps=200):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = make_opt([x])
        for _ in range(steps):
            loss = (x * x).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        assert self._quadratic_min(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_min(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adamw_converges(self):
        assert self._quadratic_min(lambda p: AdamW(p, lr=0.1, weight_decay=0.0)) < 1e-2

    def test_weight_decay_shrinks_weights(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=0.5)
        # zero gradient: only decay acts
        x.grad = np.array([0.0])
        opt.step()
        assert x.data[0] < 1.0

    def test_rejects_bad_lr(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(2))], lr=0.1)  # not trainable


class TestSchedulers:
    def _opt(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        return SGD([x], lr=1.0)

    def test_constant(self):
        opt = self._opt()
        sched = ConstantLR(opt, lr=0.5)
        sched.step()
        assert opt.lr == 0.5

    def test_cyclical_triangle(self):
        opt = self._opt()
        sched = CyclicalLR(opt, base_lr=0.1, max_lr=1.1, step_size_up=5)
        lrs = [sched.step() for _ in range(10)]
        assert max(lrs) == pytest.approx(1.1)
        assert lrs[4] < lrs[5 - 1] + 1e-12  # rising then falling
        assert lrs[-1] == pytest.approx(0.1)

    def test_cyclical_validation(self):
        with pytest.raises(ValueError):
            CyclicalLR(self._opt(), base_lr=0.5, max_lr=0.1, step_size_up=5)

    def test_linear_decay_reaches_zero(self):
        opt = self._opt()
        sched = LinearDecayLR(opt, initial_lr=1.0, total_steps=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.75)
        assert lrs[3] == pytest.approx(0.0)
        assert lrs[5] == pytest.approx(0.0)  # clamps, never negative


class TestLoRA:
    def _base(self):
        return Sequential(
            Linear(6, 8, rng=np.random.default_rng(0)),
            Tanh(),
            Linear(8, 3, rng=np.random.default_rng(1)),
        )

    def test_starts_as_identity(self):
        model = self._base()
        x = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        before = model(x).numpy().copy()
        lora = inject_lora(model, rank=2)
        assert np.allclose(lora(x).numpy(), before)

    def test_backbone_frozen(self):
        lora = inject_lora(self._base(), rank=2)
        trainable = {name for name, _ in lora.named_parameters()}
        assert all("lora_" in name for name in trainable)

    def test_lora_parameters_selector(self):
        lora = inject_lora(self._base(), rank=3)
        params = lora_parameters(lora)
        assert len(params) == 4  # (A, B) for each of the two Linears

    def test_merged_weight(self):
        base = Linear(4, 4, rng=np.random.default_rng(3))
        lora = LoRALinear(base, rank=2, rng=np.random.default_rng(4))
        lora.lora_b.data[:] = np.random.default_rng(5).normal(size=lora.lora_b.shape)
        merged = lora.merged_weight()
        x = np.random.default_rng(6).normal(size=(2, 4))
        expected = x @ merged + lora.base_bias.data
        assert np.allclose(lora(Tensor(x)).numpy(), expected)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            LoRALinear(Linear(2, 2), rank=0)

    def test_identity_passthrough(self):
        x = Tensor(np.ones((2, 2)))
        assert np.allclose(Identity()(x).numpy(), x.numpy())

    def test_gelu_module(self):
        x = Tensor(np.array([[0.0, 1.0]]))
        out = GELU()(x).numpy()
        assert out[0, 0] == pytest.approx(0.0)
        assert out[0, 1] == pytest.approx(0.841, abs=1e-2)


class TestEndToEndTraining:
    def test_classifier_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = Sequential(Linear(2, 16, rng=rng), Tanh(), Linear(16, 2, rng=rng))
        opt = AdamW(model.parameters(), lr=0.02, weight_decay=0.0)
        for _ in range(150):
            loss = cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        acc = (model(Tensor(X)).numpy().argmax(axis=1) == y).mean()
        assert acc > 0.95
