"""Property-based tests for the autograd substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    AdamW,
    LayerNorm,
    Linear,
    SGD,
    Sequential,
    Tanh,
    Tensor,
    cross_entropy,
    mse_loss,
)

small_floats = st.floats(min_value=-5.0, max_value=5.0,
                         allow_nan=False, allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2,
                                               min_side=1, max_side=6),
                  elements=small_floats))
def test_add_commutes(a):
    b = a * 0.5 + 1.0
    left = (Tensor(a) + Tensor(b)).numpy()
    right = (Tensor(b) + Tensor(a)).numpy()
    np.testing.assert_allclose(left, right)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, st.integers(2, 20), elements=small_floats))
def test_softmax_is_distribution(v):
    probs = Tensor(v.reshape(1, -1)).softmax(axis=-1).numpy()
    assert probs.min() >= 0.0
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2,
                                               min_side=2, max_side=8),
                  elements=small_floats))
def test_layernorm_output_standardised(x):
    ln = LayerNorm(x.shape[1])
    out = ln(Tensor(x)).numpy()
    # rows with meaningful variance are standardised (the eps in the
    # denominator intentionally biases near-constant rows towards zero)
    for row_in, row_out in zip(x, out):
        if row_in.std() > 1e-1:
            assert abs(row_out.mean()) < 1e-6
            assert row_out.std() == pytest.approx(1.0, abs=1e-2)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(2, 5), st.integers(0, 10_000))
def test_cross_entropy_nonnegative_and_bounded_at_uniform(n, k, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(n, k)))
    labels = rng.integers(0, k, size=n)
    loss = cross_entropy(logits, labels).item()
    assert loss >= 0.0
    uniform = cross_entropy(Tensor(np.zeros((n, k))), labels).item()
    assert uniform == pytest.approx(np.log(k), abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_sgd_step_decreases_quadratic(seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=4), requires_grad=True)
    loss_before = float((x.numpy() ** 2).sum())
    opt = SGD([x], lr=0.05)
    (x * x).sum().backward()
    opt.step()
    loss_after = float((x.numpy() ** 2).sum())
    assert loss_after <= loss_before + 1e-12


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_mse_zero_iff_equal(seed):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=6)
    assert mse_loss(Tensor(v), v).item() == pytest.approx(0.0)
    assert mse_loss(Tensor(v), v + 1.0).item() == pytest.approx(1.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_state_dict_roundtrip_preserves_function(seed):
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(3, 5, rng=rng), Tanh(), Linear(5, 2, rng=rng))
    clone = Sequential(Linear(3, 5), Tanh(), Linear(5, 2))
    clone.load_state_dict(model.state_dict())
    x = Tensor(rng.normal(size=(4, 3)))
    np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_adamw_invariant_to_gradient_scale_direction(seed):
    """Adam normalises by second moments: a scaled loss moves params in
    the same direction on the first step."""
    rng = np.random.default_rng(seed)
    init = rng.normal(size=3)

    def first_step(scale):
        x = Tensor(init.copy(), requires_grad=True)
        opt = AdamW([x], lr=0.1, weight_decay=0.0)
        ((x * x).sum() * scale).backward()
        opt.step()
        return x.numpy() - init

    d1 = first_step(1.0)
    d2 = first_step(10.0)
    if np.linalg.norm(d1) > 1e-12:
        cos = d1 @ d2 / (np.linalg.norm(d1) * np.linalg.norm(d2))
        assert cos > 0.99
