"""Robustness tests for the zoo disk cache (failure injection)."""

import json

import numpy as np
import pytest

from repro.zoo import ZooConfig, build_zoo, load_zoo, save_zoo, zoo_cache_key


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    config = ZooConfig.tiny(modality="image", seed=31, num_models=2,
                            num_targets=2, num_sources=2)
    zoo = build_zoo(config)
    root = tmp_path_factory.mktemp("zoo_cache")
    save_zoo(zoo, root)
    return config, zoo, root


class TestCacheRobustness:
    def test_missing_file_returns_none(self, saved):
        config, _, root = saved
        weights = root / zoo_cache_key(config) / "weights.npz"
        backup = weights.read_bytes()
        weights.unlink()
        try:
            assert load_zoo(config, root) is None
        finally:
            weights.write_bytes(backup)

    def test_loaded_catalog_matches(self, saved):
        config, zoo, root = saved
        loaded = load_zoo(config, root)
        assert loaded is not None
        assert loaded.catalog.stats() == zoo.catalog.stats()

    def test_different_config_is_cache_miss(self, saved):
        config, _, root = saved
        other = ZooConfig.tiny(modality="image", seed=32, num_models=2,
                               num_targets=2, num_sources=2)
        assert load_zoo(other, root) is None

    def test_config_json_readable(self, saved):
        config, _, root = saved
        payload = json.loads(
            (root / zoo_cache_key(config) / "config.json").read_text())
        assert payload["seed"] == 31
        assert payload["modality"] == "image"

    def test_save_is_idempotent(self, saved):
        config, zoo, root = saved
        save_zoo(zoo, root)  # overwrite in place
        loaded = load_zoo(config, root)
        assert np.allclose(loaded.accuracy_matrix(), zoo.accuracy_matrix())
