"""Behavioural tests for the Node2Vec p/q walk biases (§V-B1).

The paper: small p → walks revisit and stay local; small q → walks move
outward, approximating depth-first exploration.  We verify both effects
statistically on a line-with-hub graph where the tendencies are easy to
measure.
"""

import numpy as np

from repro.graph import ModelDatasetGraph, WalkConfig, generate_walks


def line_graph(length: int = 12) -> ModelDatasetGraph:
    g = ModelDatasetGraph()
    names = [f"d{i}" for i in range(length)]
    for n in names:
        g.add_node(n, "dataset")
    for a, b in zip(names[:-1], names[1:]):
        g.add_edge(a, b, 1.0, "similarity")
    return g


def mean_displacement(walks, prefix="d") -> float:
    """Average |end - start| index distance along the line."""
    total = 0.0
    for walk in walks:
        start = int(walk[0][1:])
        end = int(walk[-1][1:])
        total += abs(end - start)
    return total / len(walks)


def backtrack_rate(walks) -> float:
    """Fraction of steps that return to the node visited two steps ago."""
    returns, steps = 0, 0
    for walk in walks:
        for i in range(2, len(walk)):
            steps += 1
            if walk[i] == walk[i - 2]:
                returns += 1
    return returns / max(steps, 1)


class TestReturnParameter:
    def test_small_p_increases_backtracking(self):
        g = line_graph()
        kwargs = dict(num_walks=40, walk_length=10)
        sticky = generate_walks(g, WalkConfig(p=0.1, q=1.0, **kwargs),
                                np.random.default_rng(0))
        explorative = generate_walks(g, WalkConfig(p=10.0, q=1.0, **kwargs),
                                     np.random.default_rng(0))
        assert backtrack_rate(sticky) > backtrack_rate(explorative)


class TestInOutParameter:
    def test_small_q_travels_farther(self):
        g = line_graph()
        kwargs = dict(num_walks=40, walk_length=10)
        outward = generate_walks(g, WalkConfig(p=1.0, q=0.1, **kwargs),
                                 np.random.default_rng(1))
        inward = generate_walks(g, WalkConfig(p=1.0, q=10.0, **kwargs),
                                np.random.default_rng(1))
        assert mean_displacement(outward) > mean_displacement(inward)


class TestWalkLengthContract:
    def test_walks_have_requested_length_on_connected_graph(self):
        g = line_graph()
        walks = generate_walks(g, WalkConfig(num_walks=3, walk_length=7),
                               np.random.default_rng(2))
        assert all(len(w) == 7 for w in walks)

    def test_every_connected_node_starts_walks(self):
        g = line_graph()
        walks = generate_walks(g, WalkConfig(num_walks=2, walk_length=5),
                               np.random.default_rng(3))
        starts = {w[0] for w in walks}
        assert starts == set(g.nodes())
