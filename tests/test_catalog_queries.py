"""Additional catalog query-path tests (indexes, filters, bulk loads)."""

import numpy as np
import pytest

from repro.store import ZooCatalog


@pytest.fixture
def catalog():
    cat = ZooCatalog()
    for i in range(6):
        cat.add_model(model_id=f"m{i}", architecture="vit-s", family="vit",
                      modality="image", pretrain_dataset=f"src{i % 2}",
                      pretrain_accuracy=0.5 + i / 20, num_params=1000 + i,
                      memory_mb=1.0, input_shape=32, embedding_dim=16,
                      depth=2)
    for j in range(3):
        cat.add_dataset(dataset_id=f"d{j}", modality="image",
                        num_samples=100, num_classes=4, input_dim=32,
                        is_target=j < 2)
    for i in range(6):
        for j in range(3):
            cat.record_history(f"m{i}", f"d{j}", accuracy=0.1 * i + 0.05 * j)
            cat.record_transferability(f"m{i}", f"d{j}", "logme",
                                       score=float(i - j))
    return cat


class TestIndexedQueries:
    def test_history_for_dataset_uses_index(self, catalog):
        rows = catalog.history_for_dataset("d1")
        assert len(rows) == 6
        assert all(r["dataset_id"] == "d1" for r in rows)

    def test_transferability_filter_by_metric(self, catalog):
        rows = catalog.transferability.filter(metric="logme", dataset_id="d0")
        assert len(rows) == 6

    def test_upsert_overwrites_history(self, catalog):
        catalog.record_history("m0", "d0", accuracy=0.99)
        assert catalog.get_accuracy("m0", "d0") == 0.99
        assert len(catalog.history_for_dataset("d0")) == 6

    def test_accuracy_matrix_ordering(self, catalog):
        ids = [f"m{i}" for i in range(6)]
        M = catalog.accuracy_matrix(ids, ["d0", "d1", "d2"])
        # accuracy = 0.1*i + 0.05*j is monotone in both indexes
        assert (np.diff(M, axis=0) > 0).all()
        assert (np.diff(M, axis=1) > 0).all()

    def test_target_listing(self, catalog):
        assert catalog.target_dataset_ids() == ["d0", "d1"]

    def test_modality_filter(self, catalog):
        catalog.add_dataset(dataset_id="t0", modality="text",
                            num_samples=50, num_classes=2, input_dim=16)
        assert catalog.dataset_ids(modality="text") == ["t0"]
        assert "t0" not in catalog.dataset_ids(modality="image")

    def test_round_trip_preserves_indexes(self, catalog, tmp_path):
        path = tmp_path / "cat.json"
        catalog.save(path)
        loaded = ZooCatalog.load(path)
        assert len(loaded.history_for_dataset("d2")) == 6
        assert loaded.get_transferability("m3", "d1", "logme") == 2.0
