"""Additional behavioural tests for gradient boosting and forests."""

import numpy as np
from repro.predictors import (
    GradientBoostingRegressor,
    LinearRegression,
    RandomForestRegressor,
)


def friedman_like(n=250, seed=0):
    """A standard nonlinear regression benchmark surface."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 5))
    y = (10 * np.sin(np.pi * x[:, 0] * x[:, 1])
         + 20 * (x[:, 2] - 0.5) ** 2 + 10 * x[:, 3] + 5 * x[:, 4])
    return x, y + 0.5 * rng.normal(size=n)


class TestNonlinearFit:
    def test_boosting_beats_linear_on_nonlinear_surface(self):
        x, y = friedman_like()
        x_test, y_test = friedman_like(seed=1)
        linear_mse = ((LinearRegression().fit(x, y).predict(x_test)
                       - y_test) ** 2).mean()
        boost = GradientBoostingRegressor(n_estimators=150, max_depth=3,
                                          colsample=None, seed=0)
        boost_mse = ((boost.fit(x, y).predict(x_test) - y_test) ** 2).mean()
        assert boost_mse < linear_mse

    def test_forest_beats_linear_on_nonlinear_surface(self):
        x, y = friedman_like()
        x_test, y_test = friedman_like(seed=2)
        linear_mse = ((LinearRegression().fit(x, y).predict(x_test)
                       - y_test) ** 2).mean()
        forest = RandomForestRegressor(n_estimators=50, max_depth=8,
                                       max_features=None, seed=0)
        forest_mse = ((forest.fit(x, y).predict(x_test) - y_test) ** 2).mean()
        assert forest_mse < linear_mse

    def test_more_boosting_rounds_reduce_train_error(self):
        x, y = friedman_like(n=120)
        short = GradientBoostingRegressor(n_estimators=10, subsample=1.0,
                                          colsample=None, seed=0).fit(x, y)
        long = GradientBoostingRegressor(n_estimators=100, subsample=1.0,
                                         colsample=None, seed=0).fit(x, y)
        short_mse = ((short.predict(x) - y) ** 2).mean()
        long_mse = ((long.predict(x) - y) ** 2).mean()
        assert long_mse < short_mse

    def test_learning_rate_tradeoff(self):
        """Tiny learning rate with few trees underfits vs a moderate one."""
        x, y = friedman_like(n=150)
        slow = GradientBoostingRegressor(n_estimators=20, learning_rate=0.001,
                                         subsample=1.0, colsample=None,
                                         seed=0).fit(x, y)
        fast = GradientBoostingRegressor(n_estimators=20, learning_rate=0.2,
                                         subsample=1.0, colsample=None,
                                         seed=0).fit(x, y)
        slow_mse = ((slow.predict(x) - y) ** 2).mean()
        fast_mse = ((fast.predict(x) - y) ** 2).mean()
        assert fast_mse < slow_mse
