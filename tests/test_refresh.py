"""Incremental refresh: the mutation log, localized re-walks, service path."""

import numpy as np
import pytest

from repro.core import FeatureSet, TransferGraphConfig
from repro.graph import (
    ModelDatasetGraph,
    Node2Vec,
    SkipGramConfig,
    WalkConfig,
    generate_walks,
    train_skipgram,
)
from repro.serving import ArtifactRegistry, SelectionService
from repro.store import ZooCatalog


def barbell_graph():
    g = ModelDatasetGraph()
    left = [f"m{i}" for i in range(4)]
    right = [f"d{i}" for i in range(4)]
    for n in left:
        g.add_node(n, "model")
    for n in right:
        g.add_node(n, "dataset")
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_edge(left[i], right[j], 1.0, "accuracy")
            g.add_edge(left[j], right[i], 1.0, "accuracy")
    g.add_edge(left[0], right[0], 0.1, "transferability")
    return g


class TestMutationLog:
    def test_writers_mark_incident_nodes(self):
        cat = ZooCatalog()
        base = cat.mutation_seq
        cat.add_model(model_id="m1", architecture="vit-s", family="vit",
                      modality="image", pretrain_dataset="imagenet",
                      pretrain_accuracy=0.8, num_params=1000, memory_mb=4.0,
                      input_shape=32, embedding_dim=16, depth=3)
        cat.add_dataset(dataset_id="d1", modality="image", num_samples=100,
                        num_classes=5, input_dim=32, is_target=True)
        assert cat.dirty_nodes(base) == {"m1", "d1"}

        seq = cat.mutation_seq
        cat.record_history("m1", "d1", 0.9)
        assert cat.dirty_nodes(seq) == {"m1", "d1"}
        assert cat.mutation_seq == seq + 1

        seq = cat.mutation_seq
        cat.record_similarity("d2", "d1", 0.5)
        assert cat.dirty_nodes(seq) == {"d1", "d2"}

    def test_clean_since_current_seq(self):
        cat = ZooCatalog()
        cat.record_history("m1", "d1", 0.9)
        assert cat.dirty_nodes(cat.mutation_seq) == set()

    def test_trimmed_log_returns_none(self):
        from repro.store import catalog as catalog_mod
        cat = ZooCatalog()
        cat.record_history("m0", "d0", 0.5)
        original = catalog_mod._DIRTY_LOG_LIMIT
        catalog_mod._DIRTY_LOG_LIMIT = 4
        try:
            for i in range(8):
                cat.record_history(f"m{i}", f"d{i}", 0.5)
        finally:
            catalog_mod._DIRTY_LOG_LIMIT = original
        assert cat.dirty_nodes(0) is None
        # recent writes are still answerable
        assert cat.dirty_nodes(cat.mutation_seq) == set()


class TestLocalizedWalks:
    def test_start_nodes_restrict_walk_starts(self):
        g = barbell_graph()
        config = WalkConfig(num_walks=3, walk_length=5)
        walks = generate_walks(g, config, np.random.default_rng(0),
                               start_nodes=["m0", "d0"])
        assert walks
        assert {w[0] for w in walks} <= {"m0", "d0"}

    def test_unknown_start_nodes_ignored(self):
        g = barbell_graph()
        config = WalkConfig(num_walks=2, walk_length=4)
        assert generate_walks(g, config, np.random.default_rng(0),
                              start_nodes=["nope"]) == []

    def test_warm_start_preserves_unwalked_vectors(self):
        g = barbell_graph()
        config = SkipGramConfig(dim=8, epochs=1)
        rng = np.random.default_rng(0)
        init = {n: np.full(8, float(i)) for i, n in enumerate(g.nodes())}
        # walks that never touch d3 leave its init vector untouched
        walks = [["m0", "d1", "m1"], ["m1", "d2", "m0"]]
        out = train_skipgram(walks, g.nodes(), config, rng, init=init)
        assert set(out) == set(g.nodes())
        np.testing.assert_array_equal(out["d3"], init["d3"])
        assert not np.array_equal(out["m0"], init["m0"])

    def test_node2vec_refresh_touches_only_frontier(self):
        g = barbell_graph()
        learner = Node2Vec(dim=8, seed=1, num_walks=2, walk_length=5,
                           epochs=1)
        base = learner.embed(g)
        # d3's only neighbors are m0..m2 (no edge to m3 in the barbell),
        # so a refresh dirty on m3 leaves d3's vector carried over only
        # if d3 is outside the re-walked frontier AND no walk visits it.
        refreshed = learner.refresh(g, base, {"m3"})
        assert set(refreshed) == set(g.nodes())

    def test_refresh_empty_dirty_falls_back_to_full_embed(self):
        g = barbell_graph()
        learner = Node2Vec(dim=8, seed=1, num_walks=2, walk_length=5,
                           epochs=1)
        base = learner.embed(g)
        full = learner.embed(g)
        fallback = learner.refresh(g, base, set())
        for node in g.nodes():
            np.testing.assert_array_equal(fallback[node], full[node])


@pytest.fixture(scope="module")
def lr_config():
    return TransferGraphConfig(predictor="lr", embedding_dim=16,
                               features=FeatureSet.everything())


@pytest.fixture()
def bumped_history(tiny_image_zoo):
    """Context manager: bump one existing source-history row, restore after.

    Mutating an *existing* row (and restoring it) keeps the
    session-scoped zoo's ground truth intact for later tests while
    still dirtying the catalog's mutation log.
    """
    from contextlib import contextmanager

    @contextmanager
    def bump(delta=0.01):
        source = next(ds for ds in tiny_image_zoo.dataset_names()
                      if tiny_image_zoo.catalog.history_for_dataset(ds))
        row = tiny_image_zoo.catalog.history_for_dataset(source)[0]
        tiny_image_zoo.catalog.record_history(
            row["model_id"], source, row["accuracy"] + delta,
            epochs=row["epochs"])
        try:
            yield source
        finally:
            tiny_image_zoo.catalog.record_history(
                row["model_id"], source, row["accuracy"],
                epochs=row["epochs"])

    return bump


class TestServiceRefresh:
    def test_refresh_clean_catalog_returns_warm_pipeline(self, tiny_image_zoo,
                                                         lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        service.rank(target)
        fitted = service.cache_get(target)
        assert service.refresh(target) is fitted
        assert service.stats()["refreshes"] == 0
        assert service.stats()["fits"] == 1

    def test_refresh_after_history_write_is_incremental(self, tiny_image_zoo,
                                                        lr_config, tmp_path,
                                                        bumped_history):
        registry = ArtifactRegistry(tmp_path)
        service = SelectionService(tiny_image_zoo, lr_config,
                                   registry=registry)
        target = tiny_image_zoo.target_names()[0]
        service.rank(target)

        with bumped_history():
            refreshed = service.refresh(target)
            stats = service.stats()
            assert stats["refreshes"] == 1
            assert stats["fits"] == 1          # no second full fit
            assert stats["invalidations"] == 0
            # the refreshed pipeline serves and was written through
            ranking = refreshed.rank(tiny_image_zoo.model_ids())
            assert len(ranking) == len(tiny_image_zoo.model_ids())
            assert registry.contains(target, service.strategy)

    def test_refresh_cold_target_falls_back_to_fit(self, tiny_image_zoo,
                                                   lr_config):
        service = SelectionService(tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        service.refresh(target)
        stats = service.stats()
        assert stats["fits"] == 1
        assert stats["refreshes"] == 0
        assert stats["invalidations"] == 1

    def test_invalidate_refresh_true_delegates(self, tiny_image_zoo,
                                               lr_config, bumped_history):
        service = SelectionService(tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        service.rank(target)
        with bumped_history(delta=0.02):
            service.invalidate(target, refresh=True)
            stats = service.stats()
            assert stats["refreshes"] == 1
            assert stats["fits"] == 1

    def test_refreshed_pipeline_reflects_catalog_change(self, tiny_image_zoo,
                                                        lr_config,
                                                        bumped_history):
        service = SelectionService(tiny_image_zoo, lr_config)
        target = tiny_image_zoo.target_names()[0]
        before = service.rank(target)
        with bumped_history(delta=0.05):
            refreshed = service.refresh(target)
            after = refreshed.rank(tiny_image_zoo.model_ids())
            assert {m for m, _ in after} == {m for m, _ in before}
