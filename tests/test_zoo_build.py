"""Integration tests: zoo building, catalog contents, disk cache."""

import numpy as np
import pytest

from repro.zoo import (
    ZooConfig,
    build_zoo,
    get_or_build_zoo,
    load_zoo,
    save_zoo,
    zoo_cache_key,
)


class TestBuildZoo:
    def test_catalog_populated(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        n_models = len(zoo.model_ids())
        n_targets = len(zoo.target_names())
        assert zoo.catalog.stats()["models"] == n_models
        # one finetune row per (model, target) + one pretrain row per model
        # (count per method: other tests may add LoRA rows to the shared zoo)
        finetune_rows = zoo.catalog.history.filter(method="finetune")
        pretrain_rows = zoo.catalog.history.filter(method="pretrain")
        assert len(finetune_rows) == n_models * n_targets
        assert len(pretrain_rows) == n_models

    def test_ground_truth_vector(self, tiny_image_zoo):
        target = tiny_image_zoo.target_names()[0]
        ids, accs = tiny_image_zoo.ground_truth(target)
        assert ids == tiny_image_zoo.model_ids()
        assert accs.shape == (len(ids),)
        assert ((0.0 <= accs) & (accs <= 1.0)).all()

    def test_accuracy_matrix_complete(self, tiny_image_zoo):
        M = tiny_image_zoo.accuracy_matrix()
        assert not np.isnan(M).any()

    def test_accuracies_vary_across_models(self, tiny_image_zoo):
        M = tiny_image_zoo.accuracy_matrix()
        assert (M.std(axis=0) > 0).any()

    def test_features_cached(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        mid = zoo.model_ids()[0]
        target = zoo.target_names()[0]
        f1 = zoo.features(mid, target)
        f2 = zoo.features(mid, target)
        assert f1 is f2  # cache returns the same array

    def test_feature_dimensions(self, tiny_image_zoo):
        zoo = tiny_image_zoo
        mid = zoo.model_ids()[0]
        target = zoo.target_names()[0]
        feats = zoo.features(mid, target, split="train")
        model = zoo.model(mid)
        dataset = zoo.dataset(target)
        assert feats.shape == (len(dataset.x_train), model.spec.embedding_dim)

    def test_unknown_lookups_raise(self, tiny_image_zoo):
        with pytest.raises(KeyError):
            tiny_image_zoo.model("nope")
        with pytest.raises(KeyError):
            tiny_image_zoo.dataset("nope")

    def test_text_modality_builds(self, tiny_text_zoo):
        assert tiny_text_zoo.modality == "text"
        assert len(tiny_text_zoo.target_names()) == 3
        M = tiny_text_zoo.accuracy_matrix()
        assert not np.isnan(M).any()

    def test_build_deterministic(self):
        config = ZooConfig.tiny(modality="image", seed=99, num_models=3,
                                num_targets=2, num_sources=2)
        z1 = build_zoo(config)
        z2 = build_zoo(config)
        assert np.allclose(z1.accuracy_matrix(), z2.accuracy_matrix())

    def test_lora_history_on_demand(self, tiny_image_zoo):
        added = tiny_image_zoo.ensure_lora_history()
        n = len(tiny_image_zoo.model_ids()) * len(tiny_image_zoo.target_names())
        # first call computes everything (or tests ran before: 0), second is a no-op
        assert added in (0, n)
        assert tiny_image_zoo.ensure_lora_history() == 0
        M = tiny_image_zoo.accuracy_matrix(method="lora")
        assert not np.isnan(M).any()


class TestZooCache:
    def test_cache_key_stable_and_sensitive(self):
        c1 = ZooConfig.tiny(seed=0)
        c2 = ZooConfig.tiny(seed=0)
        c3 = ZooConfig.tiny(seed=1)
        assert zoo_cache_key(c1) == zoo_cache_key(c2)
        assert zoo_cache_key(c1) != zoo_cache_key(c3)

    def test_save_load_round_trip(self, tmp_path):
        config = ZooConfig.tiny(modality="image", seed=5, num_models=3,
                                num_targets=2, num_sources=2)
        zoo = build_zoo(config)
        save_zoo(zoo, tmp_path)
        loaded = load_zoo(config, tmp_path)
        assert loaded is not None
        assert loaded.model_ids() == zoo.model_ids()
        assert np.allclose(loaded.accuracy_matrix(), zoo.accuracy_matrix())
        # model weights restored: features identical
        mid = zoo.model_ids()[0]
        target = zoo.target_names()[0]
        assert np.allclose(loaded.features(mid, target),
                           zoo.features(mid, target))

    def test_load_missing_returns_none(self, tmp_path):
        assert load_zoo(ZooConfig.tiny(seed=123), tmp_path) is None

    def test_get_or_build_uses_cache(self, tmp_path):
        config = ZooConfig.tiny(modality="image", seed=6, num_models=2,
                                num_targets=2, num_sources=2)
        z1 = get_or_build_zoo(config, tmp_path)
        z2 = get_or_build_zoo(config, tmp_path)
        assert np.allclose(z1.accuracy_matrix(), z2.accuracy_matrix())
